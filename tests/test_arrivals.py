"""Online arrivals + admission: models, cross-checks, property fuzz, E18.

The load-bearing properties (ISSUE 5):

* the admission layer never executes a piece before its release and never
  overlaps an instance with itself (seeded fuzz over random workloads ×
  arrival families);
* with zero offsets, per-instance migration counts match the cyclic
  reading of ``periodic.unroll(relabel=True)``;
* a sporadic stream with interarrival exactly the period reproduces the
  periodic reading's response times and migration counts **bit-for-bit**
  (exact ``Fraction`` equality, no float on the path).
"""

from fractions import Fraction

import pytest

from repro.exceptions import InvalidInstanceError, InvalidScheduleError
from repro.schedule import (
    PeriodicArrivals,
    Schedule,
    SporadicArrivals,
    check_releases,
    job_transitions,
    priced_job_migration_cost,
    response_stats,
    tardiness,
    unroll,
    wrapped_tail,
)
from repro.schedule.arrivals import JobArrival
from repro.simulation import CostModel, Topology, admit
from repro.workloads import (
    ARRIVAL_FAMILIES,
    derive_seed,
    make_arrivals,
    rng_from_seed,
)
from repro.workloads.generators import utilization_workload


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def wrap_template():
    """T=4 template: job 0 wraps on m0 ([2,4) + [0,1)), job 1 migrates
    m1→m0 ([0,3) on m1, [1,2) on m0 — self-overlap-free)."""
    s = Schedule([0, 1], 4)
    s.add_segment(0, 0, 2, 4)
    s.add_segment(0, 0, 0, 1)
    s.add_segment(1, 1, 0, 3)
    # job 1's second piece would self-overlap; use a third job instead
    s.add_segment(0, 2, 1, 2)
    return s


@pytest.fixture
def migrating_template():
    """T=6 template: job 0 runs m0 [0,2) then m1 [2,5) (one migration)."""
    s = Schedule([0, 1], 6)
    s.add_segment(0, 0, 0, 2)
    s.add_segment(1, 0, 2, 5)
    s.add_segment(1, 1, 0, 2)
    s.add_segment(0, 1, 3, 6)
    return s


# ---------------------------------------------------------------------------
# arrival models
# ---------------------------------------------------------------------------


class TestJobArrival:
    def test_exact_fraction_coercion(self):
        a = JobArrival(job=0, index=0, release=1, deadline=Fraction(3, 2))
        assert isinstance(a.release, Fraction) and a.release == 1
        assert a.deadline == Fraction(3, 2)

    def test_negative_release_rejected(self):
        with pytest.raises(InvalidInstanceError):
            JobArrival(job=0, index=0, release=-1, deadline=0)

    def test_deadline_before_release_rejected(self):
        with pytest.raises(InvalidInstanceError):
            JobArrival(job=0, index=0, release=2, deadline=1)


class TestPeriodicArrivals:
    def test_zero_offset_releases_every_period(self):
        model = PeriodicArrivals(n_jobs=2, period=4)
        stream = model.arrivals_until(12)
        per_job = {j: [a for a in stream if a.job == j] for j in (0, 1)}
        for j in (0, 1):
            assert [a.release for a in per_job[j]] == [0, 4, 8]
            assert [a.index for a in per_job[j]] == [0, 1, 2]
            # implicit deadlines: release + period, exactly
            assert all(a.deadline == a.release + 4 for a in per_job[j])

    def test_horizon_is_exclusive(self):
        model = PeriodicArrivals(n_jobs=1, period=4)
        assert [a.release for a in model.arrivals_until(8)] == [0, 4]
        assert [a.release for a in model.arrivals_until(Fraction(81, 10))] == [0, 4, 8]

    def test_offsets_shift_releases(self):
        model = PeriodicArrivals(
            n_jobs=2, period=4, offsets=(Fraction(1, 2), Fraction(3))
        )
        stream = model.arrivals_until(8)
        assert [a.release for a in stream if a.job == 0] == [
            Fraction(1, 2), Fraction(9, 2),
        ]
        assert [a.release for a in stream if a.job == 1] == [3, 7]

    def test_per_job_periods_harmonic(self):
        model = PeriodicArrivals(n_jobs=2, period=2, periods=(2, 4))
        stream = model.arrivals_until(8)
        assert [a.release for a in stream if a.job == 0] == [0, 2, 4, 6]
        assert [a.release for a in stream if a.job == 1] == [0, 4]
        # deadlines follow the *base* period
        assert all(a.deadline == a.release + 2 for a in stream)

    def test_stream_sorted_canonically(self):
        model = PeriodicArrivals(n_jobs=3, period=4, offsets=(2, 0, 2))
        stream = model.arrivals_until(8)
        keys = [(a.release, a.job, a.index) for a in stream]
        assert keys == sorted(keys)

    def test_jitter_is_exact_bounded_and_deterministic(self):
        model = PeriodicArrivals(
            n_jobs=3, period=4, jitter=Fraction(1), resolution=8, seed=42
        )
        stream = model.arrivals_until(40)
        for a in stream:
            slack = a.release - a.index * 4
            assert 0 <= slack <= 1
            assert (slack * 8).denominator == 1  # on the declared grid
        again = PeriodicArrivals(
            n_jobs=3, period=4, jitter=Fraction(1), resolution=8, seed=42
        ).arrivals_until(40)
        assert stream == again
        other_seed = PeriodicArrivals(
            n_jobs=3, period=4, jitter=Fraction(1), resolution=8, seed=43
        ).arrivals_until(40)
        assert stream != other_seed

    def test_jitter_stream_is_per_job_stable(self):
        """Job j's jittered releases don't depend on how many jobs exist —
        the derive_seed(seed, label, job) contract."""
        small = PeriodicArrivals(n_jobs=1, period=4, jitter=1, seed=7)
        big = PeriodicArrivals(n_jobs=5, period=4, jitter=1, seed=7)
        assert [a.release for a in small.arrivals_until(20)] == [
            a.release for a in big.arrivals_until(20) if a.job == 0
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_jobs=0, period=4),
            dict(n_jobs=1, period=0),
            dict(n_jobs=1, period=-2),
            dict(n_jobs=2, period=4, offsets=(1,)),
            dict(n_jobs=1, period=4, offsets=(-1,)),
            dict(n_jobs=2, period=4, periods=(4,)),
            dict(n_jobs=1, period=4, periods=(0,)),
            dict(n_jobs=1, period=4, relative_deadline=0),
            dict(n_jobs=1, period=4, jitter=-1),
            dict(n_jobs=1, period=4, jitter=4),  # ≥ period scrambles order
            dict(n_jobs=1, period=4, resolution=0),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(InvalidInstanceError):
            PeriodicArrivals(**kwargs)


class TestSporadicArrivals:
    def test_zero_slack_is_periodic_bit_for_bit(self):
        sporadic = SporadicArrivals(n_jobs=3, min_interarrival=4, seed=9)
        periodic = PeriodicArrivals(n_jobs=3, period=4, seed=9)
        assert sporadic.arrivals_until(24) == periodic.arrivals_until(24)

    def test_slack_respects_minimum_interarrival(self):
        model = SporadicArrivals(
            n_jobs=2, min_interarrival=4, max_slack=2, resolution=4, seed=5
        )
        for j in (0, 1):
            rels = model.job_releases(j, Fraction(60))
            gaps = [b - a for a, b in zip(rels, rels[1:])]
            assert all(4 <= g <= 6 for g in gaps)
            assert all((g * 4).denominator == 1 for g in gaps)

    def test_deterministic_and_seed_sensitive(self):
        kw = dict(n_jobs=2, min_interarrival=4, max_slack=2)
        a = SporadicArrivals(seed=1, **kw).arrivals_until(40)
        assert a == SporadicArrivals(seed=1, **kw).arrivals_until(40)
        assert a != SporadicArrivals(seed=2, **kw).arrivals_until(40)

    def test_implicit_deadline_is_min_interarrival(self):
        model = SporadicArrivals(n_jobs=1, min_interarrival=3, max_slack=1, seed=0)
        for a in model.arrivals_until(30):
            assert a.deadline == a.release + 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_jobs=0, min_interarrival=4),
            dict(n_jobs=1, min_interarrival=0),
            dict(n_jobs=1, min_interarrival=4, max_slack=-1),
            dict(n_jobs=1, min_interarrival=4, relative_deadline=0),
            dict(n_jobs=1, min_interarrival=4, resolution=0),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(InvalidInstanceError):
            SporadicArrivals(**kwargs)


# ---------------------------------------------------------------------------
# admission
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_basic_placement_and_instance_ids(self, wrap_template):
        stream = PeriodicArrivals(n_jobs=3, period=4).arrivals_until(12)
        result = admit(wrap_template, stream, 3)
        # one instance of each of the 3 template jobs per window
        assert len(result.admitted) == 9
        stride = 3
        for inst in result.admitted:
            assert inst.instance_id == inst.job + inst.window * stride
            assert inst.window == inst.index  # period == T, zero offsets

    def test_wrapped_instance_completes_in_next_window(self, wrap_template):
        stream = PeriodicArrivals(n_jobs=3, period=4).arrivals_until(12)
        result = admit(wrap_template, stream, 3)
        job0 = result.instances_of(0)
        # head [2,4) in window w, tail [0,1) at the start of window w+1
        assert [i.completion for i in job0] == [5, 9, 13]
        assert [i.response_time for i in job0] == [5, 5, 5]
        job1 = result.instances_of(1)
        assert [i.completion for i in job1] == [3, 7, 11]

    def test_release_feasibility_holds(self, wrap_template):
        stream = PeriodicArrivals(
            n_jobs=3, period=4, offsets=(0, 1, 2)
        ).arrivals_until(12)
        result = admit(wrap_template, stream, 3)
        assert check_releases(result.schedule, result.releases()) == []
        for inst in result.admitted:
            assert inst.start >= inst.release

    def test_offset_instances_wait_for_next_boundary(self, wrap_template):
        stream = PeriodicArrivals(
            n_jobs=3, period=4, offsets=(1, 1, 1)
        ).arrivals_until(12)
        result = admit(wrap_template, stream, 3)
        for inst in result.admitted:
            assert inst.window * 4 >= inst.release
            assert inst.waiting_time == inst.window * 4 + (
                inst.start - inst.window * 4
            ) - inst.release

    def test_one_instance_per_job_per_window_queues_fifo(self, migrating_template):
        # period T/2: two arrivals of each job per window → backlog grows
        stream = PeriodicArrivals(n_jobs=2, period=3).arrivals_until(12)
        result = admit(migrating_template, stream, 2)
        # windows 0 and 1 each serve exactly one instance per job
        assert len(result.admitted) == 4
        for job in (0, 1):
            indices = [i.index for i in result.instances_of(job)]
            assert indices == [0, 1]  # FIFO: earliest arrivals first
        assert result.max_backlog >= 1
        assert len(result.pending) == 2  # index-2 arrivals released at t=6
        assert not result.schedulable

    def test_unreleased_not_counted_as_backlog(self, migrating_template):
        stream = PeriodicArrivals(n_jobs=2, period=6).arrivals_until(18)
        result = admit(migrating_template, stream, 2)
        # index-2 arrivals release at 12 > last boundary 6: unreleased
        assert len(result.admitted) == 4
        assert result.pending == []
        assert len(result.unreleased) == 2
        assert result.schedulable

    def test_migration_counts_and_pricing(self, migrating_template):
        topo = Topology.flat(2)
        cm = CostModel.xeon_like()
        stream = PeriodicArrivals(n_jobs=2, period=6).arrivals_until(12)
        result = admit(migrating_template, stream, 2, topology=topo, cost_model=cm)
        for inst in result.instances_of(0):
            assert inst.migrations == 1
            assert inst.priced_overhead == priced_job_migration_cost(
                result.schedule, inst.instance_id, topo, cm
            )
            assert inst.priced_overhead > 0
        for inst in result.instances_of(1):
            assert inst.migrations == 1

    def test_default_cost_model_applied_with_topology(self, migrating_template):
        stream = PeriodicArrivals(n_jobs=2, period=6).arrivals_until(6)
        result = admit(migrating_template, stream, 1, topology=Topology.flat(2))
        assert any(i.priced_overhead > 0 for i in result.admitted)

    def test_no_topology_means_zero_overhead(self, migrating_template):
        stream = PeriodicArrivals(n_jobs=2, period=6).arrivals_until(6)
        result = admit(migrating_template, stream, 1)
        assert all(i.priced_overhead == 0 for i in result.admitted)

    def test_instance_ids_unique_even_without_template_jobs(self):
        """Regression: an empty template (no segments) must still label
        each (job, window) admission with a distinct instance id."""
        empty = Schedule([0], 4)
        stream = PeriodicArrivals(n_jobs=2, period=4).arrivals_until(8)
        result = admit(empty, stream, 2)
        ids = [i.instance_id for i in result.admitted]
        assert len(ids) == len(set(ids)) == 4
        assert len(result.releases()) == 4

    def test_zero_work_job_completes_at_boundary(self, migrating_template):
        arrival = JobArrival(job=7, index=0, release=2, deadline=20)
        result = admit(migrating_template, [arrival], 2)
        (inst,) = result.instances_of(7)
        assert inst.window == 1  # next boundary after release 2 is t=6
        assert inst.start == inst.completion == 6
        assert inst.migrations == 0

    def test_deadline_misses_are_strict(self, wrap_template):
        # job 0 responds in 5; deadline 5 exactly → met, 4.99… → missed
        met = JobArrival(job=0, index=0, release=0, deadline=5)
        missed = JobArrival(job=0, index=0, release=0, deadline=Fraction(9, 2))
        assert not admit(wrap_template, [met], 2).admitted[0].missed_deadline
        assert admit(wrap_template, [missed], 2).admitted[0].missed_deadline

    def test_validation_errors(self, wrap_template):
        stream = PeriodicArrivals(n_jobs=1, period=4).arrivals_until(4)
        with pytest.raises(InvalidScheduleError):
            admit(wrap_template, stream, 0)
        zero = Schedule([0], 0)
        with pytest.raises(InvalidScheduleError):
            admit(zero, stream, 2)

    def test_stats_shortcut_matches_metrics(self, wrap_template):
        stream = PeriodicArrivals(n_jobs=3, period=4).arrivals_until(8)
        result = admit(wrap_template, stream, 2)
        stats = result.stats()
        assert stats.completed == len(result.admitted)
        assert stats == response_stats(result.admitted)
        assert result.miss_ratio == stats.miss_ratio


class TestZeroOffsetMatchesUnroll:
    """Zero-offset periodic admission == the cyclic reading, instance by
    instance (satellite 1's accounting cross-check)."""

    PERIODS = 4

    def _compare(self, template):
        jobs = template.jobs()
        stride = (max(jobs) + 1) if jobs else 1
        stream = PeriodicArrivals(
            n_jobs=stride, period=template.T
        ).arrivals_until(self.PERIODS * template.T)
        result = admit(template, stream, self.PERIODS)
        unrolled = unroll(template, self.PERIODS, relabel=True)
        # interior instances (windows 0 … P-2): identical pieces, hence
        # identical migration counts and completions
        for q in range(self.PERIODS - 1):
            for job in jobs:
                iid = job + q * stride
                admitted_pieces = sorted(
                    (m, seg.start, seg.end)
                    for m, seg in result.schedule.job_segments(iid)
                )
                unrolled_pieces = sorted(
                    (m, seg.start, seg.end)
                    for m, seg in unrolled.job_segments(iid)
                )
                assert admitted_pieces == unrolled_pieces
                assert (
                    job_transitions(result.schedule, iid).migrations
                    == job_transitions(unrolled, iid).migrations
                )

    def test_wrap_template(self, wrap_template):
        self._compare(wrap_template)

    def test_migrating_template(self, migrating_template):
        self._compare(migrating_template)

    def test_response_times_match_the_cyclic_reading(self, wrap_template):
        stream = PeriodicArrivals(n_jobs=3, period=4).arrivals_until(16)
        result = admit(wrap_template, stream, 4)
        unrolled = unroll(wrap_template, 4, relabel=True)
        for inst in result.admitted:
            if inst.window >= self.PERIODS - 1:
                continue  # unroll truncates the last period's tail
            completion = max(
                seg.end for _m, seg in unrolled.job_segments(inst.instance_id)
            )
            assert inst.completion == completion
            assert inst.response_time == completion - inst.release


class TestSporadicPeriodicBitForBit:
    """Satellite 2: interarrival == period ⇒ the sporadic admission is the
    periodic reading, exactly — Fractions all the way down."""

    def _results(self, template):
        T = template.T
        jobs = template.jobs()
        n = (max(jobs) + 1) if jobs else 1
        horizon = 4 * T
        sporadic = SporadicArrivals(
            n_jobs=n, min_interarrival=T, max_slack=0, seed=3
        ).arrivals_until(horizon)
        periodic = PeriodicArrivals(n_jobs=n, period=T).arrivals_until(horizon)
        return (
            admit(template, sporadic, 4),
            admit(template, periodic, 4),
        )

    def test_streams_and_admissions_identical(self, wrap_template):
        sp, pe = self._results(wrap_template)
        assert sp.admitted == pe.admitted  # dataclass equality: every field
        assert sp.pending == pe.pending
        assert sp.schedule.as_table() == pe.schedule.as_table()

    def test_response_times_exact_fractions(self, wrap_template):
        sp, pe = self._results(wrap_template)
        for a, b in zip(sp.admitted, pe.admitted):
            assert isinstance(a.response_time, Fraction)
            assert a.response_time == b.response_time
            assert a.migrations == b.migrations

    def test_fractional_horizon_template(self):
        s = Schedule([0, 1], Fraction(7, 2))
        s.add_segment(0, 0, Fraction(5, 2), Fraction(7, 2))
        s.add_segment(0, 0, 0, Fraction(1, 2))
        s.add_segment(1, 1, Fraction(1, 3), 3)
        sp, pe = self._results(s)
        assert sp.admitted == pe.admitted
        assert all(isinstance(i.completion, Fraction) for i in sp.admitted)


# ---------------------------------------------------------------------------
# property fuzz: random workloads × arrival families
# ---------------------------------------------------------------------------


def _no_self_overlap(schedule, instance_id):
    segs = sorted(
        (seg.start, seg.end) for _m, seg in schedule.job_segments(instance_id)
    )
    return all(a_end <= b_start for (_s, a_end), (b_start, _e) in zip(segs, segs[1:]))


class TestAdmissionPropertiesFuzz:
    """Seeded fuzz loops over random instances + arrival streams."""

    TRIALS = 8
    T_REF = 10
    WINDOWS = 3

    def _template(self, seed):
        from repro.core.exact import find_assignment_within
        from repro.core.hierarchical import schedule_hierarchical
        from repro.simulation import Topology

        topo = Topology.clustered(4, 2)
        rng = rng_from_seed(derive_seed(seed, "fuzz-instance"))
        u = 0.55 + 0.1 * (seed % 4)
        instance = utilization_workload(rng, topo.family, u, self.T_REF)
        ext = instance.with_singletons()
        witness = find_assignment_within(ext, self.T_REF)
        if witness is None:
            return None, None
        return topo, schedule_hierarchical(ext, witness, self.T_REF)

    def test_never_executes_before_release_and_never_self_overlaps(self):
        checked = 0
        for seed in range(self.TRIALS):
            topo, template = self._template(seed)
            if template is None:
                continue
            n = len(template.jobs())
            for family in sorted(ARRIVAL_FAMILIES):
                model = make_arrivals(family, seed, n, template.T)
                stream = model.arrivals_until(self.WINDOWS * template.T)
                result = admit(template, stream, self.WINDOWS)
                assert check_releases(result.schedule, result.releases()) == []
                for inst in result.admitted:
                    assert inst.start >= inst.release
                    assert _no_self_overlap(result.schedule, inst.instance_id)
                checked += 1
        assert checked >= self.TRIALS  # the fuzz actually exercised cases

    def test_admitted_instances_receive_full_template_work(self):
        for seed in range(self.TRIALS):
            topo, template = self._template(seed)
            if template is None:
                continue
            work = {j: template.work_of(j) for j in template.jobs()}
            n = len(template.jobs())
            stream = PeriodicArrivals(n_jobs=n, period=template.T).arrivals_until(
                self.WINDOWS * template.T
            )
            result = admit(template, stream, self.WINDOWS)
            for inst in result.admitted:
                assert result.schedule.work_of(inst.instance_id) == work[inst.job]

    def test_zero_offset_migration_counts_match_unroll_fuzz(self):
        for seed in range(self.TRIALS):
            _topo, template = self._template(seed)
            if template is None:
                continue
            jobs = template.jobs()
            stride = (max(jobs) + 1) if jobs else 1
            stream = PeriodicArrivals(
                n_jobs=stride, period=template.T
            ).arrivals_until(self.WINDOWS * template.T)
            result = admit(template, stream, self.WINDOWS)
            unrolled = unroll(template, self.WINDOWS, relabel=True)
            for q in range(self.WINDOWS - 1):
                for job in jobs:
                    iid = job + q * stride
                    assert (
                        job_transitions(result.schedule, iid).migrations
                        == job_transitions(unrolled, iid).migrations
                    )


# ---------------------------------------------------------------------------
# response metrics
# ---------------------------------------------------------------------------


class _Inst:
    def __init__(self, release, completion, deadline):
        self.release = release
        self.completion = completion
        self.deadline = deadline


class TestResponseMetrics:
    def test_tardiness_clamps_at_zero(self):
        assert tardiness(5, 7) == 0
        assert tardiness(7, 7) == 0
        assert tardiness(Fraction(15, 2), 7) == Fraction(1, 2)

    def test_stats_exact_rationals(self):
        stats = response_stats(
            [
                _Inst(0, Fraction(7, 3), 3),
                _Inst(1, 4, Fraction(7, 2)),
            ]
        )
        assert stats.completed == 2
        assert stats.misses == 1
        assert stats.miss_ratio == Fraction(1, 2)
        assert stats.max_response == 3
        assert stats.mean_response == (Fraction(7, 3) + 3) / 2
        assert stats.max_tardiness == Fraction(1, 2)
        assert stats.total_tardiness == Fraction(1, 2)

    def test_completion_at_deadline_is_met(self):
        stats = response_stats([_Inst(0, 4, 4)])
        assert stats.misses == 0 and stats.miss_ratio == 0

    def test_empty_iterable(self):
        stats = response_stats([])
        assert stats.completed == 0
        assert stats.max_response is None
        assert stats.mean_response is None
        assert stats.miss_ratio is None


# ---------------------------------------------------------------------------
# arrival families + wrapped_tail helper
# ---------------------------------------------------------------------------


class TestArrivalFamilies:
    def test_registry_contents(self):
        assert set(ARRIVAL_FAMILIES) == {
            "synchronous", "bursty", "harmonic", "jittered", "sporadic",
        }

    @pytest.mark.parametrize("name", sorted(ARRIVAL_FAMILIES))
    def test_every_family_builds_exact_streams(self, name):
        model = make_arrivals(name, 17, 4, Fraction(6))
        stream = model.arrivals_until(24)
        assert stream
        for a in stream:
            assert isinstance(a.release, Fraction)
            assert isinstance(a.deadline, Fraction)
            assert a.deadline > a.release
        again = make_arrivals(name, 17, 4, Fraction(6)).arrivals_until(24)
        assert stream == again

    def test_synchronous_is_zero_offset(self):
        stream = make_arrivals("synchronous", 0, 2, 4).arrivals_until(8)
        assert all(a.release % 4 == 0 for a in stream)

    def test_bursty_groups_share_offsets_inside_half_window(self):
        model = make_arrivals("bursty", 3, 8, Fraction(8))
        offsets = set(model.offsets)
        assert len(offsets) <= 2  # two bursts by default
        assert all(0 <= o < 4 for o in offsets)  # first half of the window

    def test_harmonic_periods_are_window_multiples(self):
        model = make_arrivals("harmonic", 3, 6, Fraction(6))
        for p in model.periods:
            assert p % 6 == 0 and p >= 6

    def test_sporadic_interarrival_at_least_window(self):
        model = make_arrivals("sporadic", 3, 2, Fraction(5))
        rels = model.job_releases(0, Fraction(60))
        assert all(b - a >= 5 for a, b in zip(rels, rels[1:]))

    def test_unknown_family_rejected(self):
        with pytest.raises(InvalidInstanceError):
            make_arrivals("nope", 0, 1, 4)


class TestWrappedTailHelper:
    def test_detects_wrap(self, wrap_template):
        tail = wrapped_tail(wrap_template, 0)
        assert [(m, s.start, s.end) for m, s in tail] == [(0, 0, 1)]

    def test_no_wrap_without_boundary_pieces(self, migrating_template):
        assert wrapped_tail(migrating_template, 0) == []
        assert wrapped_tail(migrating_template, 1) == []

    def test_single_full_window_piece_is_not_a_tail(self):
        s = Schedule([0], 4)
        s.add_segment(0, 0, 0, 4)
        assert wrapped_tail(s, 0) == []


# ---------------------------------------------------------------------------
# E18
# ---------------------------------------------------------------------------


class TestE18:
    def test_tiny_run_produces_phase_rows(self):
        from repro.experiments.e18_online_arrivals import run

        res = run(
            utilizations=(0.5, 0.95),
            arrival_families=("synchronous",),
            topologies=("flat4",),
            trials=1,
        )
        assert len(res.rows) == 2
        assert res.table.headers[0] == "topology"
        low = res.row("flat4", "synchronous", 0.5)
        high = res.row("flat4", "synchronous", 0.95)
        assert low is not None and high is not None
        assert low.admitted > 0 and high.admitted > 0
        # phase-diagram shape: the high-utilization point misses at least
        # as often as the low one (templates wrap more as u → 1)
        assert high.miss_ratio >= low.miss_ratio

    def test_deadline_factor_two_absorbs_the_wrap(self):
        from repro.experiments.e18_online_arrivals import run

        tight = run(
            utilizations=(0.95,), arrival_families=("synchronous",),
            topologies=("flat4",), trials=1, deadline_factor=1,
        )
        loose = run(
            utilizations=(0.95,), arrival_families=("synchronous",),
            topologies=("flat4",), trials=1, deadline_factor=2,
        )
        assert tight.rows[0].misses > 0  # wrap-induced misses exist…
        assert loose.rows[0].misses == 0  # …and one extra window absorbs them

    def test_spec_registered_and_sweepable(self):
        from repro.runner import get_spec

        spec = get_spec("e18")
        assert spec.seedable
        points = spec.points()
        assert len(points) == 6  # 3 family groups × 2 topologies
        assert all("arrival_families" in p and "topologies" in p for p in points)

    def test_run_rejects_bad_parameters(self):
        from repro.experiments.e18_online_arrivals import run

        with pytest.raises(ValueError):
            run(windows=1)
        with pytest.raises(ValueError):
            run(deadline_factor=0)
