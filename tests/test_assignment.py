"""Unit tests for assignments and the (IP-1)/(IP-2) feasibility checks."""

from fractions import Fraction

import pytest

from repro import Assignment, FractionalAssignment, Instance, verify_ip1, verify_ip2, verify_lp
from repro.core.assignment import min_T_for_assignment, set_volumes
from repro.exceptions import InvalidAssignmentError


class TestAssignment:
    def test_roundtrip(self):
        a = Assignment({0: {0}, 1: {0, 1}})
        assert a[0] == frozenset({0})
        assert a[1] == frozenset({0, 1})
        assert len(a) == 2

    def test_jobs_on(self):
        a = Assignment({0: {0}, 1: {0}, 2: {1}})
        assert a.jobs_on({0}) == (0, 1)
        assert a.jobs_on({1}) == (2,)
        assert a.jobs_on({0, 1}) == ()

    def test_equality(self):
        assert Assignment({0: {0}}) == Assignment({0: [0]})
        assert Assignment({0: {0}}) != Assignment({0: {1}})


class TestVolumes:
    def test_set_volumes(self, instance_ii1, assignment_ii1):
        volumes = set_volumes(instance_ii1, assignment_ii1)
        assert volumes[frozenset({0})] == 1
        assert volumes[frozenset({1})] == 1
        assert volumes[frozenset({0, 1})] == 2

    def test_forbidden_assignment_raises(self, instance_ii1):
        bad = Assignment({0: {1}, 1: {1}, 2: {0, 1}})  # job 0 can't run on m1
        with pytest.raises(InvalidAssignmentError):
            set_volumes(instance_ii1, bad)


class TestVerifyIP2:
    def test_example_iii1_feasible_at_2(self, instance_ii1, assignment_ii1):
        assert verify_ip2(instance_ii1, assignment_ii1, 2).feasible

    def test_example_iii1_infeasible_at_1(self, instance_ii1, assignment_ii1):
        report = verify_ip2(instance_ii1, assignment_ii1, 1)
        assert not report.feasible
        kinds = {v.constraint for v in report.violations}
        assert "2c" in kinds  # job 2 has p=2 > 1

    def test_capacity_violation_detected(self):
        inst = Instance.identical(2, [3, 3, 3])
        root = frozenset({0, 1})
        a = Assignment({0: root, 1: root, 2: root})
        report = verify_ip2(inst, a, 4)
        assert not report.feasible  # 9 > 2·4
        assert report.violations[0].constraint == "2b"
        assert verify_ip2(inst, a, Fraction(9, 2)).feasible

    def test_nested_volume_counts_subsets(self, small_hierarchical):
        # All jobs on singletons must still respect the root capacity.
        a = Assignment({j: frozenset({0}) for j in range(5)})
        vol = sum(small_hierarchical.p(j, {0}) for j in range(5))
        report = verify_ip2(small_hierarchical, a, vol)
        assert report.feasible
        report2 = verify_ip2(small_hierarchical, a, vol - 1)
        assert not report2.feasible

    def test_wrong_job_cover_raises(self, instance_ii1):
        with pytest.raises(InvalidAssignmentError):
            verify_ip2(instance_ii1, Assignment({0: {0}}), 2)

    def test_non_admissible_mask_raises(self, instance_ii1):
        bad = Assignment({0: {0}, 1: {1}, 2: {0, 1}})
        inst_unrelated = instance_ii1.unrelated_collapse()
        with pytest.raises(InvalidAssignmentError):
            verify_ip2(inst_unrelated, bad, 5)

    def test_raise_if_infeasible(self, instance_ii1, assignment_ii1):
        with pytest.raises(InvalidAssignmentError):
            verify_ip2(instance_ii1, assignment_ii1, 1).raise_if_infeasible()
        verify_ip2(instance_ii1, assignment_ii1, 2).raise_if_infeasible()


class TestVerifyIP1:
    def test_matches_ip2_on_semi_partitioned(self, instance_ii1, assignment_ii1):
        for T in (1, 2, 3):
            assert (
                verify_ip1(instance_ii1, assignment_ii1, T).feasible
                == verify_ip2(instance_ii1, assignment_ii1, T).feasible
            )

    def test_rejects_non_semi_partitioned_family(self, small_hierarchical):
        a = Assignment({j: frozenset({0}) for j in range(5)})
        with pytest.raises(InvalidAssignmentError):
            verify_ip1(small_hierarchical, a, 100)

    def test_local_overload_is_1c(self):
        inst = Instance.semi_partitioned(p_local=[[1, 5], [1, 5]], p_global=[5, 5])
        a = Assignment({0: {0}, 1: {0}})
        report = verify_ip1(inst, a, Fraction(3, 2))
        assert not report.feasible
        assert any(v.constraint == "1c" for v in report.violations)

    def test_total_volume_is_1b(self):
        inst = Instance.semi_partitioned(
            p_local=[[2, 2]] * 3, p_global=[2, 2, 2]
        )
        root = frozenset({0, 1})
        a = Assignment({j: root for j in range(3)})
        report = verify_ip1(inst, a, 2)
        assert not report.feasible
        assert any(v.constraint == "1b" for v in report.violations)


class TestMinT:
    def test_example_iii1(self, instance_ii1, assignment_ii1):
        assert min_T_for_assignment(instance_ii1, assignment_ii1) == 2

    def test_fractional_optimum(self):
        inst = Instance.identical(2, [3, 3, 3])
        root = frozenset({0, 1})
        a = Assignment({j: root for j in range(3)})
        assert min_T_for_assignment(inst, a) == Fraction(9, 2)

    def test_individual_time_dominates(self):
        inst = Instance.identical(3, [10, 1, 1])
        root = frozenset(range(3))
        a = Assignment({j: root for j in range(3)})
        assert min_T_for_assignment(inst, a) == 10


class TestFractionalAssignment:
    def test_integral_roundtrip(self, assignment_ii1):
        x = FractionalAssignment.from_assignment(assignment_ii1)
        assert x.is_integral()
        assert x.to_assignment() == assignment_ii1

    def test_zero_entries_dropped(self):
        x = FractionalAssignment({(frozenset({0}), 0): 0, (frozenset({1}), 0): 1})
        assert x.support == ((frozenset({1}), 0),)

    def test_negative_raises(self):
        with pytest.raises(InvalidAssignmentError):
            FractionalAssignment({(frozenset({0}), 0): -1})

    def test_job_total(self):
        x = FractionalAssignment(
            {(frozenset({0}), 0): Fraction(1, 3), (frozenset({1}), 0): Fraction(2, 3)}
        )
        assert x.job_total(0) == 1
        assert x.job_total(1) == 0

    def test_non_integral_to_assignment_raises(self):
        x = FractionalAssignment({(frozenset({0}), 0): Fraction(1, 2)})
        with pytest.raises(InvalidAssignmentError):
            x.to_assignment()

    def test_supported_on_singletons(self):
        x = FractionalAssignment({(frozenset({0}), 0): 1})
        assert x.supported_on_singletons()
        y = FractionalAssignment({(frozenset({0, 1}), 0): 1})
        assert not y.supported_on_singletons()

    def test_slack_definition(self, instance_ii1, assignment_ii1):
        x = FractionalAssignment.from_assignment(assignment_ii1)
        root = frozenset({0, 1})
        # slack(M) = 2T − (1 + 1 + 2)
        assert x.slack(instance_ii1, root, 2) == 0
        assert x.slack(instance_ii1, root, 3) == 2
        assert x.slack(instance_ii1, frozenset({0}), 2) == 1


class TestVerifyLP:
    def test_integral_solution_checks_out(self, instance_ii1, assignment_ii1):
        x = FractionalAssignment.from_assignment(assignment_ii1)
        assert verify_lp(instance_ii1, x, 2).feasible

    def test_4a_violation(self, instance_ii1):
        x = FractionalAssignment({(frozenset({0}), 0): Fraction(1, 2)})
        report = verify_lp(instance_ii1, x, 10)
        assert not report.feasible
        assert any(v.constraint == "4a" for v in report.violations)

    def test_4b_violation(self):
        inst = Instance.identical(1, [4])
        x = FractionalAssignment({(frozenset({0}), 0): 1})
        report = verify_lp(inst, x, 3)
        assert any(v.constraint == "4b" for v in report.violations)

    def test_4d_pruning_violation(self, instance_ii1):
        root = frozenset({0, 1})
        x = FractionalAssignment(
            {(frozenset({0}), 0): 1, (frozenset({1}), 1): 1, (root, 2): 1}
        )
        report = verify_lp(instance_ii1, x, Fraction(3, 2))
        assert any(v.constraint == "4d" for v in report.violations)
        relaxed = verify_lp(instance_ii1, x, Fraction(3, 2), require_pruned=False)
        assert all(v.constraint != "4d" for v in relaxed.violations)
