"""Property-based cross-check: exact, scipy and hybrid backends agree.

Satellite of the certified-hybrid PR: on random hierarchical instances the
three backends must return the same feasibility verdicts and — after
certification — the same ``T*`` to *exact* equality.  Any divergence means
an uncertified float value leaked through the solver stack.
"""

from fractions import Fraction

import pytest

from repro import minimal_fractional_T
from repro.core.programs import IP3Builder, lp_feasible
from repro.workloads import random_hierarchical, random_semi_partitioned, rng_from_seed

BACKENDS = ("exact", "scipy", "hybrid")


def _instances():
    for seed in (1, 7, 23, 140, 999):
        rng = rng_from_seed(seed)
        yield random_hierarchical(rng, n=int(rng.integers(3, 8)), m=int(rng.integers(2, 5)))
    for seed in (5, 11):
        rng = rng_from_seed(seed)
        yield random_semi_partitioned(rng, n=5, m=3)


class TestBackendAgreement:
    @pytest.mark.parametrize("idx", range(7))
    def test_t_star_exact_equality(self, idx):
        inst = list(_instances())[idx]
        values = {b: minimal_fractional_T(inst, backend=b) for b in BACKENDS}
        assert values["exact"] == values["hybrid"] == values["scipy"]
        assert isinstance(values["hybrid"], Fraction)

    @pytest.mark.parametrize("idx", range(7))
    def test_feasibility_verdicts_agree(self, idx):
        inst = list(_instances())[idx]
        builder = IP3Builder(inst)
        points = builder.breakpoints
        # Probe at breakpoints, between them, and below the smallest one.
        probes = list(points[:4])
        if len(points) >= 2:
            probes.append((points[0] + points[1]) / 2)
        probes.append(points[0] / 2)
        for T in probes:
            verdicts = {b: lp_feasible(inst, T, backend=b) for b in BACKENDS}
            assert verdicts["exact"] == verdicts["scipy"] == verdicts["hybrid"], (
                f"backends disagree at T={T}: {verdicts}"
            )

    def test_t_star_is_feasibility_threshold(self):
        # T* itself is feasible, anything strictly below is not — for every
        # backend, certified.
        inst = list(_instances())[0]
        t_star = minimal_fractional_T(inst, backend="hybrid")
        below = t_star * Fraction(99, 100)
        for backend in BACKENDS:
            assert lp_feasible(inst, t_star, backend=backend)
            assert not lp_feasible(inst, below, backend=backend)


class TestTwoApproxAcrossBackends:
    def test_same_t_lp_and_valid_bound(self):
        from repro import two_approximation, validate_schedule

        rng = rng_from_seed(77)
        inst = random_hierarchical(rng, n=6, m=3)
        results = {b: two_approximation(inst, backend=b) for b in BACKENDS}
        t_values = {b: r.T_lp for b, r in results.items()}
        assert t_values["exact"] == t_values["hybrid"] == t_values["scipy"]
        for backend, result in results.items():
            assert result.makespan <= 2 * result.T_lp
            report = validate_schedule(
                result.instance, result.assignment, result.schedule
            )
            assert report.valid, f"{backend} produced an invalid schedule"
