"""Tests for the classical baselines."""

from fractions import Fraction

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import Instance
from repro.baselines import (
    SCHEDULER_CLASSES,
    compare_scheduler_classes,
    first_fit_decreasing,
    greedy_partition,
    list_schedule,
    lpt_makespan,
    mcnaughton_makespan,
    mcnaughton_schedule,
    minimal_unrelated_T,
    partition_schedule,
    restrict_instance,
    restricted_family_for,
    solve_restricted,
    solve_semi_greedy,
    solve_unrelated_2approx,
)
from repro.exceptions import InfeasibleError, InvalidFamilyError, InvalidInstanceError
from repro.workloads import random_semi_partitioned, rng_from_seed


class TestMcNaughton:
    def test_makespan_formula(self):
        assert mcnaughton_makespan([3, 3, 3], 2) == Fraction(9, 2)
        assert mcnaughton_makespan([10, 1, 1], 3) == 10
        assert mcnaughton_makespan([], 4) == 0

    def test_schedule_delivers_all_work(self):
        T, s = mcnaughton_schedule([3, 3, 3], 2)
        assert T == Fraction(9, 2)
        for j, length in enumerate([3, 3, 3]):
            assert s.work_of(j) == length

    def test_no_job_overlaps_itself(self):
        T, s = mcnaughton_schedule([5, 5, 5, 5], 4)
        for j in range(4):
            segs = sorted((seg for _m, seg in s.job_segments(j)), key=lambda x: x.start)
            for a, b in zip(segs, segs[1:]):
                assert a.end <= b.start

    def test_job_of_length_T(self):
        T, s = mcnaughton_schedule([4, 2, 2], 2)
        assert T == 4
        assert s.work_of(0) == 4

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 15), min_size=1, max_size=10), st.integers(1, 5))
    def test_optimality_and_validity_random(self, lengths, m):
        T, s = mcnaughton_schedule(lengths, m)
        assert T == mcnaughton_makespan(lengths, m)
        assert s.makespan() <= T
        for j, length in enumerate(lengths):
            assert s.work_of(j) == length
            segs = sorted((seg for _mm, seg in s.job_segments(j)), key=lambda x: x.start)
            for a, b in zip(segs, segs[1:]):
                assert a.end <= b.start

    def test_invalid_inputs(self):
        with pytest.raises(InvalidInstanceError):
            mcnaughton_makespan([1], 0)
        with pytest.raises(InvalidInstanceError):
            mcnaughton_makespan([-1], 2)


class TestListScheduling:
    def test_graham_bound(self):
        lengths = [4, 3, 3, 2, 2]
        makespan, _s, _p = list_schedule(lengths, 2)
        opt_lb = mcnaughton_makespan(lengths, 2)
        assert makespan <= (2 - Fraction(1, 2)) * opt_lb

    def test_lpt_at_least_as_good_here(self):
        lengths = [2, 2, 2, 6]
        greedy, _s, _p = list_schedule(lengths, 2, order="input")
        lpt = lpt_makespan(lengths, 2)
        assert lpt <= greedy

    def test_schedule_consistency(self):
        makespan, s, placement = list_schedule([5, 4, 3], 2, order="lpt")
        assert s.makespan() == makespan
        for j, i in placement.items():
            machines = {m for m, _seg in s.job_segments(j)}
            assert machines == {i}

    def test_unknown_order_raises(self):
        with pytest.raises(InvalidInstanceError):
            list_schedule([1], 1, order="random")


class TestPartitioned:
    def test_greedy_prefers_cheap_machine(self):
        p = {0: {0: 10, 1: 1}}
        makespan, placement = greedy_partition(p, [0, 1])
        assert placement[0] == 1 and makespan == 1

    def test_greedy_balances_load(self):
        p = {j: {0: 2, 1: 2} for j in range(4)}
        makespan, placement = greedy_partition(p, [0, 1])
        assert makespan == 4

    def test_lpt_order(self):
        p = {0: {0: 1, 1: 1}, 1: {0: 6, 1: 6}, 2: {0: 2, 1: 2}}
        makespan, _ = greedy_partition(p, [0, 1], order="lpt")
        assert makespan == 6

    def test_first_fit_decreasing(self):
        p = {0: {0: 3, 1: 3}, 1: {0: 3, 1: 3}, 2: {0: 3, 1: 3}}
        placed, overflow = first_fit_decreasing(p, [0, 1], T=3)
        assert len(placed) == 2 and overflow == [2]
        placed2, overflow2 = first_fit_decreasing(p, [0, 1], T=6)
        assert not overflow2

    def test_infeasible_job_raises(self):
        from repro import INF

        with pytest.raises(InfeasibleError):
            greedy_partition({0: {0: INF}}, [0])

    def test_partition_schedule_sequential(self):
        p = {0: {0: 2}, 1: {0: 3}}
        s = partition_schedule(p, [0], {0: 0, 1: 0})
        assert s.makespan() == 5
        assert s.machine_load(0) == 5


class TestLSTUnrelated:
    def test_bound(self):
        p = {j: {i: 3 for i in range(2)} for j in range(3)}
        result = solve_unrelated_2approx(p, [0, 1])
        assert result.makespan <= result.bound
        assert result.T_lp == Fraction(9, 2)

    def test_load_dominated_T(self):
        # Optimum above the largest processing time.
        p = {j: {0: 3, 1: 3} for j in range(4)}
        assert minimal_unrelated_T(p) == 6

    def test_between_breakpoints(self):
        # p values {1, 10}; LP optimum sits between them.
        p = {
            0: {0: 1, 1: 1},
            1: {0: 1, 1: 1},
            2: {0: 1, 1: 1},
            3: {0: 10, 1: 10},
        }
        T = minimal_unrelated_T(p)
        assert T == 10  # the long job needs 10 wherever it lands

    def test_pure_load_balance_fractional(self):
        p = {j: {0: 5, 1: 5} for j in range(3)}
        assert minimal_unrelated_T(p) == Fraction(15, 2)

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10**6))
    def test_2approx_property(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n, m = int(rng.integers(2, 6)), int(rng.integers(2, 4))
        p = {j: {i: int(rng.integers(1, 10)) for i in range(m)} for j in range(n)}
        result = solve_unrelated_2approx(p, list(range(m)))
        assert result.makespan <= 2 * result.T_lp


class TestSemiGreedy:
    def test_solves_example(self, instance_ii1_big):
        result = solve_semi_greedy(instance_ii1_big)
        assert result.makespan >= 2  # optimum is 2
        from repro import validate_schedule

        assert validate_schedule(
            instance_ii1_big, result.assignment, result.schedule
        ).valid

    def test_requires_semi_partitioned_family(self, small_hierarchical):
        with pytest.raises(InvalidFamilyError):
            solve_semi_greedy(small_hierarchical)

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10**6))
    def test_valid_schedules_random(self, seed):
        rng = rng_from_seed(seed)
        inst = random_semi_partitioned(
            rng, n=int(rng.integers(2, 7)), m=int(rng.integers(2, 4))
        )
        result = solve_semi_greedy(inst)
        from repro import validate_schedule

        assert validate_schedule(inst, result.assignment, result.schedule).valid


class TestRestrictions:
    def test_restricted_families(self, small_hierarchical):
        fam = small_hierarchical.family
        root = frozenset(range(4))
        assert restricted_family_for(small_hierarchical, "global") == [root]
        singles = restricted_family_for(small_hierarchical, "partitioned")
        assert len(singles) == 4
        semi = restricted_family_for(small_hierarchical, "semi")
        assert root in semi and len(semi) == 5
        clustered = restricted_family_for(small_hierarchical, "clustered")
        assert frozenset({0, 1}) in clustered

    def test_unknown_class_raises(self, small_hierarchical):
        with pytest.raises(InvalidFamilyError):
            restricted_family_for(small_hierarchical, "quantum")

    def test_restrict_instance_keeps_times(self, small_hierarchical):
        sub = restrict_instance(small_hierarchical, [frozenset({0})])
        assert sub.p(0, {0}) == small_hierarchical.p(0, {0})

    def test_restrict_to_unknown_set_raises(self, small_hierarchical):
        with pytest.raises(InvalidFamilyError):
            restrict_instance(small_hierarchical, [frozenset({0, 2})])

    def test_solve_restricted_hierarchical_never_worse_than_global(
        self, small_hierarchical
    ):
        comparison = compare_scheduler_classes(small_hierarchical)
        assert set(comparison) == set(SCHEDULER_CLASSES)
        hier = comparison["hierarchical"]
        glob = comparison["global"]
        assert hier.feasible
        if glob.feasible:
            # The hierarchical LP bound is at least as strong.
            assert hier.T_lp <= glob.T_lp

    def test_infeasible_class_reported_not_raised(self, instance_ii1):
        # Jobs 0/1 cannot run globally in Example II.1 (INF) — the global
        # class must come back infeasible, not crash.
        comparison = compare_scheduler_classes(instance_ii1)
        assert not comparison["global"].feasible
        assert comparison["semi"].feasible
