"""Cross-checks between independent implementations of the same quantity.

Agreement between code paths that share no logic is the strongest internal
correctness evidence the reproduction can produce; these tests pin the key
identities.
"""

from fractions import Fraction

import pytest

from repro import (
    Instance,
    minimal_fractional_T,
    schedule_hierarchical,
    schedule_semi_partitioned,
    solve_exact,
    two_approximation,
    verify_ip1,
    verify_ip2,
)
from repro.baselines import (
    mcnaughton_makespan,
    minimal_unrelated_T,
    preemptive_makespan,
)
from repro.workloads import (
    random_feasible_pair,
    random_semi_partitioned,
    rng_from_seed,
)


class TestIPFormulationAgreement:
    def test_ip1_equals_ip2_on_semi_partitioned_families(self):
        """(IP-1) is the two-level specialization of (IP-2) — check on many
        random (assignment, T) pairs including infeasible ones."""
        rng = rng_from_seed(500)
        for _ in range(20):
            inst = random_semi_partitioned(
                rng, n=int(rng.integers(2, 8)), m=int(rng.integers(2, 5))
            )
            assignment, T = random_feasible_pair(rng, inst)
            for horizon in (T, T - 1, T + 3, Fraction(T, 2)):
                if horizon < 0:
                    continue
                assert (
                    verify_ip1(inst, assignment, horizon).feasible
                    == verify_ip2(inst, assignment, horizon).feasible
                )


class TestMakespanIdentities:
    def test_identical_machines_three_ways(self):
        """McNaughton formula == preemptive LP == fractional (IP-3) bound."""
        rng = rng_from_seed(501)
        for _ in range(5):
            m = int(rng.integers(2, 5))
            lengths = [int(rng.integers(1, 15)) for _ in range(int(rng.integers(2, 8)))]
            mcn = mcnaughton_makespan(lengths, m)
            p = {j: {i: lengths[j] for i in range(m)} for j in range(len(lengths))}
            lp = preemptive_makespan(p)
            inst = Instance.identical(m, lengths)
            t_star = minimal_fractional_T(inst)
            assert mcn == lp == t_star

    def test_unrelated_lp_bound_equals_ip3_bound_on_singleton_families(self):
        rng = rng_from_seed(502)
        for _ in range(5):
            n, m = int(rng.integers(2, 6)), int(rng.integers(2, 4))
            matrix = [
                [int(rng.integers(1, 12)) for _ in range(m)] for _ in range(n)
            ]
            inst = Instance.unrelated(matrix)
            p = {j: {i: matrix[j][i] for i in range(m)} for j in range(n)}
            assert minimal_fractional_T(inst) == minimal_unrelated_T(p)

    def test_exact_optimum_sandwiched(self):
        """T* ≤ OPT ≤ 2-approx makespan ≤ 2·T*, all four computed separately."""
        rng = rng_from_seed(503)
        for _ in range(5):
            inst = random_semi_partitioned(rng, n=4, m=3)
            t_star = minimal_fractional_T(inst)
            opt = solve_exact(inst).optimum
            approx = two_approximation(inst).makespan
            assert t_star <= opt <= approx <= 2 * t_star


class TestSchedulerAgreement:
    def test_both_schedulers_realize_min_T_exactly(self):
        """Theorem III.1/IV.3: at the assignment's min horizon both
        schedulers deliver the full work with zero slack on the bottleneck."""
        rng = rng_from_seed(504)
        for _ in range(8):
            inst = random_semi_partitioned(rng, n=5, m=3)
            assignment, T = random_feasible_pair(rng, inst)
            s1 = schedule_semi_partitioned(inst, assignment, T)
            s2 = schedule_hierarchical(inst, assignment, T)
            total1 = sum((s1.machine_load(i) for i in s1.machines), Fraction(0))
            total2 = sum((s2.machine_load(i) for i in s2.machines), Fraction(0))
            assert total1 == total2
            assert s1.makespan() <= T and s2.makespan() <= T
