"""Regression tests: degenerate inputs to the T-search and INF guard rails.

Satellites of the certified-hybrid PR:

* ``minimal_fractional_T`` must resolve degenerate instances exactly
  (all-INF rows, zero-volume jobs, ``T* = 0``) instead of probing a vacuous
  binary search;
* the INF sentinel must surface as a domain error
  (:class:`InvalidInstanceError`), never as ``to_fraction``'s bare
  ``ValueError``.
"""

from fractions import Fraction

import pytest

from repro import INF, Instance, LaminarFamily, minimal_fractional_T
from repro._fraction import to_fraction_finite
from repro.exceptions import InvalidInstanceError


def _family2():
    return LaminarFamily([0, 1], [[0, 1], [0], [1]])


class TestDegenerateMinimalT:
    def test_all_inf_row_raises_domain_error(self):
        # Job 1 can run nowhere: structural, not a matter of the horizon.
        fam = _family2()
        inst = Instance(
            fam,
            {
                0: {frozenset({0, 1}): 2, frozenset({0}): 1, frozenset({1}): 1},
                1: {frozenset({0, 1}): INF, frozenset({0}): INF, frozenset({1}): INF},
            },
        )
        with pytest.raises(InvalidInstanceError, match="no finite processing time"):
            minimal_fractional_T(inst)

    def test_all_inf_row_raises_for_every_backend(self):
        fam = LaminarFamily.global_only(2)
        inst = Instance(fam, {0: {frozenset({0, 1}): INF}})
        for backend in ("exact", "scipy", "hybrid"):
            with pytest.raises(InvalidInstanceError):
                minimal_fractional_T(inst, backend=backend)

    def test_zero_volume_instance_returns_exact_zero(self):
        inst = Instance.identical(3, [0, 0, 0, 0])
        t_star = minimal_fractional_T(inst)
        assert t_star == 0
        assert isinstance(t_star, Fraction)

    def test_mixed_zero_and_inf_entries_zero_optimum(self):
        # Finite times are all 0, but some pairs are forbidden: still T*=0.
        fam = _family2()
        inst = Instance(
            fam,
            {
                0: {frozenset({0, 1}): INF, frozenset({0}): 0, frozenset({1}): INF},
                1: {frozenset({0, 1}): INF, frozenset({0}): INF, frozenset({1}): 0},
            },
        )
        assert minimal_fractional_T(inst) == 0

    def test_single_zero_job(self):
        inst = Instance.identical(2, [0])
        assert minimal_fractional_T(inst) == 0

    def test_nondegenerate_path_unchanged(self):
        # The guards must not disturb the ordinary search.
        inst = Instance.identical(2, [3, 3, 3])
        assert minimal_fractional_T(inst) == Fraction(9, 2)


class TestInfGuards:
    def test_to_fraction_finite_passthrough(self):
        assert to_fraction_finite(Fraction(3, 2)) == Fraction(3, 2)
        assert to_fraction_finite(2) == 2

    def test_to_fraction_finite_inf(self):
        with pytest.raises(InvalidInstanceError, match="INF sentinel"):
            to_fraction_finite(INF, "processing time of job 3")

    def test_to_fraction_finite_nan(self):
        with pytest.raises(InvalidInstanceError, match="NaN"):
            to_fraction_finite(float("nan"))

    def test_message_names_the_quantity(self):
        with pytest.raises(InvalidInstanceError, match="length of job 1"):
            to_fraction_finite(INF, "length of job 1")

    def test_mcnaughton_rejects_inf_as_domain_error(self):
        from repro.baselines import mcnaughton_makespan

        with pytest.raises(InvalidInstanceError):
            mcnaughton_makespan([1, INF, 2], 2)

    def test_list_schedule_rejects_inf_as_domain_error(self):
        from repro.baselines import list_schedule

        with pytest.raises(InvalidInstanceError):
            list_schedule([1, INF], 2)

    def test_assignment_loads_rejects_inf_as_domain_error(self):
        from repro.rounding.lst import assignment_loads

        p = {0: {0: 1, 1: INF}}
        with pytest.raises(InvalidInstanceError):
            assignment_loads(p, {0: 1})
