"""Unit tests for the experiment harness' result objects and helpers.

The integration tests exercise ``run()`` end to end; these cover the result
dataclasses' derived predicates — the logic the benches' assertions rely on.
"""

from fractions import Fraction

import pytest

from repro.analysis import RatioStats, Table
from repro.experiments.e03_migration_bounds import E03Row
from repro.experiments.e07_two_approx_ratio import E07Result, E07Row
from repro.experiments.e08_gap_family import E08Result, E08Row
from repro.experiments.e09_general_masks import random_crossing_instance
from repro.experiments.e11_memory_model2 import _uniform_tree
from repro.experiments.e12_scheduler_comparison import E12Result, E12Row
from repro.experiments.e15_schedulability import E15Result, E15Row
from repro.workloads import rng_from_seed


class TestE03Row:
    def test_within_bounds(self):
        row = E03Row(
            m=4,
            trials=10,
            max_migrations_processing=3,
            bound_migrations=3,
            max_wallclock_migrations=4,
            max_total_transitions=6,
            bound_total=6,
        )
        assert row.within_bounds

    def test_violation_detected(self):
        row = E03Row(
            m=4,
            trials=10,
            max_migrations_processing=4,
            bound_migrations=3,
            max_wallclock_migrations=4,
            max_total_transitions=6,
            bound_total=6,
        )
        assert not row.within_bounds


class TestE07Result:
    def _row(self, max_ratio):
        return E07Row(
            n=4, m=3, trials=5, vs_lp=RatioStats.of([1.0, max_ratio]), vs_opt=None
        )

    def test_bound_holds(self):
        result = E07Result(rows=[self._row(1.9)], table=Table("t", ["a"]))
        assert result.bound_holds

    def test_bound_violation(self):
        result = E07Result(rows=[self._row(2.1)], table=Table("t", ["a"]))
        assert not result.bound_holds


class TestE08Result:
    def test_matches_paper_requires_all_fields(self):
        good = E08Row(
            n=5,
            opt_i=4,
            opt_iu=7,
            gap=Fraction(7, 4),
            predicted_gap=Fraction(7, 4),
            approx_makespan=7,
        )
        bad = E08Row(
            n=5,
            opt_i=4,
            opt_iu=8,
            gap=Fraction(2, 1),
            predicted_gap=Fraction(7, 4),
            approx_makespan=7,
        )
        assert E08Result(rows=[good], table=Table("t", ["a"])).matches_paper
        assert not E08Result(rows=[good, bad], table=Table("t", ["a"])).matches_paper


class TestE12Result:
    def test_hierarchy_never_loses(self):
        row = E12Row(
            workload="w",
            normalized={"global": 2.0, "hierarchical": 1.0, "partitioned": None},
            infeasible={"partitioned": 3},
            migrations=1.0,
        )
        assert E12Result(rows=[row], table=Table("t", ["a"])).hierarchy_never_loses

    def test_loss_detected(self):
        row = E12Row(
            workload="w",
            normalized={"global": 0.9, "hierarchical": 1.0},
            infeasible={},
            migrations=0.0,
        )
        assert not E12Result(rows=[row], table=Table("t", ["a"])).hierarchy_never_loses


class TestE15Result:
    def _result(self, hier, part):
        rows = [
            E15Row(
                utilization=0.9,
                acceptance={
                    "global": 0.1,
                    "partitioned": part,
                    "clustered": 0.1,
                    "semi": hier,
                    "hierarchical": hier,
                },
            )
        ]
        return E15Result(rows=rows, table=Table("t", ["a"]))

    def test_domination(self):
        assert self._result(1.0, 0.8).hierarchy_dominates
        assert not self._result(0.7, 0.8).hierarchy_dominates

    def test_acceptance_curve(self):
        result = self._result(1.0, 0.8)
        assert result.acceptance_curve("partitioned") == [0.8]


class TestGeneratorsHelpers:
    def test_random_crossing_instance_valid(self):
        rng = rng_from_seed(77)
        gmi = random_crossing_instance(rng, n=5, m=4)
        assert gmi.n == 5 and gmi.m == 4
        # singletons always present
        for i in range(4):
            assert frozenset([i]) in gmi.sets

    def test_uniform_tree_structure(self):
        fam = _uniform_tree(8, 2)
        assert fam.is_tree
        assert fam.has_all_singletons
        # all leaves at the same level (Model 2's assumption)
        assert fam.is_uniform_tree

    def test_uniform_tree_odd_arity(self):
        fam = _uniform_tree(9, 3)
        assert fam.is_tree
        assert fam.has_all_singletons
