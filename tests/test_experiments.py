"""Integration tests: the E01–E14 experiment suite at small scale.

These assert the paper-predicted values; the benchmark harness runs the same
code at larger scale and prints the tables.
"""

import pytest

from repro.experiments import (
    e01_example_ii1,
    e02_example_iii1,
    e03_migration_bounds,
    e04_semi_partitioned_validity,
    e05_hierarchical_validity,
    e06_pushdown,
    e07_two_approx_ratio,
    e08_gap_family,
    e09_general_masks,
    e10_memory_model1,
    e11_memory_model2,
    e12_scheduler_comparison,
    e13_integrality,
    e14_scaling,
)


class TestE01:
    def test_matches_paper(self):
        result = e01_example_ii1.run()
        assert result.opt_semi == 2
        assert result.opt_collapse == 3
        assert result.T_lp == 2
        assert "E01" in result.table.render()


class TestE02:
    def test_matches_paper(self):
        result = e02_example_iii1.run()
        assert result.T == 2
        assert result.valid
        assert result.makespan == 2
        assert result.migrations_of_global_job == 1


class TestE03:
    def test_bounds_hold(self):
        result = e03_migration_bounds.run(
            machine_counts=(2, 3, 4), trials=10, n_jobs=8
        )
        for row in result.rows:
            assert row.within_bounds, row


class TestE04:
    def test_all_valid(self):
        result = e04_semi_partitioned_validity.run(
            shapes=((5, 2), (8, 3)), trials=6
        )
        assert result.all_valid


class TestE05:
    def test_all_valid_and_lemma_iv2(self):
        result = e05_hierarchical_validity.run(
            machine_counts=(3, 5, 7), trials=8, n_jobs=8
        )
        assert result.all_valid
        assert result.lemma_iv2_holds


class TestE06:
    def test_lemma_v1_holds(self):
        result = e06_pushdown.run(machine_counts=(3, 4, 5), n_jobs=5)
        assert result.lemma_holds


class TestE07:
    def test_theorem_v2_bound(self):
        result = e07_two_approx_ratio.run(
            shapes=((4, 3), (6, 3)), trials=4
        )
        assert result.bound_holds
        for row in result.rows:
            if row.vs_opt is not None:
                assert row.vs_opt.maximum <= 2.0 + 1e-12


class TestE08:
    def test_matches_paper_formulas(self):
        result = e08_gap_family.run(sizes=(3, 4, 5, 6))
        assert result.matches_paper
        gaps = [float(r.gap) for r in result.rows]
        assert gaps == sorted(gaps)  # gap increases toward 2
        assert gaps[-1] < 2.0


class TestE09:
    def test_eight_approx_bound(self):
        result = e09_general_masks.run(shapes=((4, 3), (6, 4)), trials=5)
        assert result.bound_holds


class TestE10:
    def test_model1_bounds(self):
        result = e10_memory_model1.run(
            shapes=(("semi", 5, 2), ("clustered", 6, 4)), trials=3
        )
        assert result.bounds_hold
        assert any(r.completed for r in result.rows)


class TestE11:
    def test_model2_bounds(self):
        result = e11_memory_model2.run(configs=((2, 2, 3), (4, 2, 4)), trials=3)
        assert result.bounds_hold
        assert any(r.completed for r in result.rows)
        # No fallback drops: evidence for Lemma VI.2's existence claim.
        assert all(r.fallback_drops == 0 for r in result.rows)


class TestE12:
    def test_hierarchy_never_loses_and_crossovers_appear(self):
        result = e12_scheduler_comparison.run(n_jobs=5, trials=2)
        assert result.hierarchy_never_loses
        by_name = {r.workload: r for r in result.rows}
        coarse = by_name["coarse saturated"]
        # Partitioning must pay for not splitting on saturated coarse grains.
        assert coarse.normalized["partitioned"] is not None
        assert coarse.normalized["partitioned"] > 1.05
        # Global must pay migration overhead on the migration-averse mix.
        averse = by_name["migration-averse"]
        assert averse.normalized["global"] is None or averse.normalized["global"] > 1.2


class TestE13:
    def test_gaps_at_most_2(self):
        result = e13_integrality.run(trials=6, gap_ms=(2, 3, 4))
        assert result.gaps_at_most_2
        # The gap family approaches 2 from below: 2 − 1/m exactly.
        for gm, T_star, opt, gap in result.gap_family_rows:
            assert gap == 2 - (1 / __import__("fractions").Fraction(gm))


class TestE14:
    def test_runs_and_reports(self):
        result = e14_scaling.run(shapes=((5, 3),), backends=("exact", "scipy"))
        assert len(result.rows) == 2
        assert all(r.seconds >= 0 for r in result.rows)
        assert all(r.ratio_vs_lp <= 2.0 + 1e-9 for r in result.rows)


class TestE15:
    def test_hierarchy_dominates_and_partitioned_decays(self):
        from repro.experiments import e15_schedulability

        result = e15_schedulability.run(
            utilizations=(0.6, 1.0), m=4, T_ref=20, trials=4
        )
        assert result.hierarchy_dominates
        # At u = 1.0 the flexible classes must still function.
        last = result.rows[-1]
        assert last.acceptance["hierarchical"] >= last.acceptance["partitioned"]
