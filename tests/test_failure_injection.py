"""Failure injection: corrupt valid artifacts and assert detection.

The validator and the runtime invariant checks are the safety net for the
whole reproduction — these tests prove the net actually catches each class
of corruption (rather than everything merely *happening* to be green).
"""

from fractions import Fraction

import pytest

from repro import (
    Assignment,
    Instance,
    Schedule,
    schedule_semi_partitioned,
    validate_schedule,
)
from repro.core.hierarchical import LoadAllocation, allocate_loads
from repro.exceptions import InvalidScheduleError
from repro.schedule.serialize import schedule_from_dict, schedule_to_dict
from repro.workloads import random_feasible_pair, random_semi_partitioned, rng_from_seed


@pytest.fixture
def valid_artifact():
    rng = rng_from_seed(404)
    inst = random_semi_partitioned(rng, n=6, m=3)
    assignment, T = random_feasible_pair(rng, inst)
    schedule = schedule_semi_partitioned(inst, assignment, T)
    assert validate_schedule(inst, assignment, schedule, T=T).valid
    return inst, assignment, T, schedule


def _rebuild_without(schedule: Schedule, victim_machine, victim_index) -> Schedule:
    data = schedule_to_dict(schedule)
    kept = []
    count = 0
    for item in data["segments"]:
        if item["machine"] == victim_machine:
            if count == victim_index:
                count += 1
                continue
            count += 1
        kept.append(item)
    data["segments"] = kept
    return schedule_from_dict(data)


class TestScheduleCorruption:
    def test_dropping_a_segment_caught(self, valid_artifact):
        inst, assignment, T, schedule = valid_artifact
        machine = next(m for m in schedule.machines if len(schedule.timeline(m)) > 0)
        corrupted = _rebuild_without(schedule, machine, 0)
        report = validate_schedule(inst, assignment, corrupted, T=T)
        assert not report.valid
        assert any(v.kind == "work" for v in report.violations)

    def test_shifting_a_segment_out_of_horizon_caught(self, valid_artifact):
        inst, assignment, T, schedule = valid_artifact
        data = schedule_to_dict(schedule)
        data["T"] = f"{(2 * T).numerator}/{(2 * T).denominator}"
        seg = data["segments"][0]
        start = Fraction(int(seg["start"].split("/")[0]), int(seg["start"].split("/")[1]))
        end = Fraction(int(seg["end"].split("/")[0]), int(seg["end"].split("/")[1]))
        seg["start"] = f"{(start + T).numerator}/{(start + T).denominator}"
        seg["end"] = f"{(end + T).numerator}/{(end + T).denominator}"
        corrupted = schedule_from_dict(data)
        report = validate_schedule(inst, assignment, corrupted, T=T)
        assert not report.valid
        kinds = {v.kind for v in report.violations}
        assert "horizon" in kinds or "self-parallel" in kinds

    def test_moving_work_to_wrong_machine_caught(self, valid_artifact):
        inst, assignment, T, schedule = valid_artifact
        # Find a locally-assigned job and replay its work on another machine.
        local_job = next(
            j for j, a in assignment.items() if len(a) == 1
        )
        (home,) = tuple(assignment[local_job])
        other = next(m for m in schedule.machines if m != home)
        corrupted = Schedule(schedule.machines, T)
        for machine in schedule.machines:
            for seg in schedule.timeline(machine):
                target = other if seg.job == local_job else machine
                try:
                    corrupted.add_segment(target, seg.job, seg.start, seg.end)
                except InvalidScheduleError:
                    # Collision on the new machine is itself a detection.
                    return
        report = validate_schedule(inst, assignment, corrupted, T=T)
        assert not report.valid
        assert any(v.kind == "mask" for v in report.violations)

    def test_duplicating_work_caught(self, valid_artifact):
        inst, assignment, T, schedule = valid_artifact
        data = schedule_to_dict(schedule)
        grown = dict(data)
        victim = data["segments"][0]
        # Append a copy of the victim's interval on a free machine slot at
        # the end of an enlarged horizon.
        grown["T"] = f"{(2 * T).numerator}/{(2 * T).denominator}"
        length = Fraction(int(victim["end"].split("/")[0]), int(victim["end"].split("/")[1])) - Fraction(
            int(victim["start"].split("/")[0]), int(victim["start"].split("/")[1])
        )
        grown["segments"] = data["segments"] + [
            {
                "machine": victim["machine"],
                "job": victim["job"],
                "start": f"{(T).numerator}/{(T).denominator}",
                "end": f"{(T + length).numerator}/{(T + length).denominator}",
            }
        ]
        corrupted = schedule_from_dict(grown)
        report = validate_schedule(inst, assignment, corrupted)
        assert not report.valid
        assert any(v.kind == "work" for v in report.violations)


class TestAllocationCorruption:
    def test_overloaded_allocation_caught_by_lemma_iv1_check(self, valid_artifact):
        inst, assignment, T, _schedule = valid_artifact
        allocation = allocate_loads(inst, assignment, T)
        # Inflate one cumulative load beyond T and re-check.
        key = next(iter(allocation.tot_load))
        corrupted = LoadAllocation(
            T=allocation.T,
            load=dict(allocation.load),
            tot_load={**allocation.tot_load, key: T + 1},
        )
        with pytest.raises(InvalidScheduleError):
            corrupted.check_lemma_iv1()

    def test_scheduler_rejects_wrong_T(self, valid_artifact):
        inst, assignment, T, _schedule = valid_artifact
        from repro.exceptions import InfeasibleError, InvalidAssignmentError

        with pytest.raises((InfeasibleError, InvalidAssignmentError)):
            schedule_semi_partitioned(inst, assignment, T / 4)


class TestContainerDefenses:
    def test_overlap_insertion_rejected_eagerly(self):
        s = Schedule([0], 10)
        s.add_segment(0, 0, 0, 5)
        with pytest.raises(InvalidScheduleError):
            s.add_segment(0, 1, 4, 6)

    def test_timeline_is_immutable_from_outside(self):
        s = Schedule([0], 10)
        s.add_segment(0, 0, 0, 5)
        segments = s.timeline(0).segments
        assert isinstance(segments, tuple)  # no in-place mutation surface
