"""Tests for the scenario-diversity engine: workload families, the topology
zoo (NUMA distances, speeds, asymmetric trees), and experiments E16/E17."""

from fractions import Fraction

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import Instance, schedule_hierarchical
from repro.exceptions import (
    InvalidFamilyError,
    InvalidInstanceError,
    RoundingCertificationError,
)
from repro.rounding.iterative import iterative_round
from repro.schedule.metrics import (
    distinct_machine_migrations,
    migration_tier_histogram,
    priced_migration_cost,
)
from repro.schedule.periodic import interior_instance_migrations, unroll
from repro.simulation import CostModel, Topology
from repro.workloads import (
    FAMILIES,
    TOPOLOGIES,
    fallback_stress_program,
    make_instance,
    make_topology,
    random_feasible_pair,
    rng_from_seed,
)

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ---------------------------------------------------------------------------
# smp_cmp tier naming (the ISSUE 3 regression): degenerate dimensions
# ---------------------------------------------------------------------------


class TestSmpCmpNaming:
    def test_acceptance_regression(self):
        assert Topology.smp_cmp(1, 2, 2).tier_name(2) == "system"

    @pytest.mark.parametrize(
        "dims,names",
        [
            ((2, 2, 2), ("core", "chip", "node", "system")),
            ((1, 2, 2), ("core", "chip", "system")),
            ((2, 1, 2), ("core", "chip", "system")),
            ((2, 2, 1), ("core", "node", "system")),
            ((1, 1, 4), ("core", "system")),
            ((1, 4, 1), ("core", "system")),
            ((4, 1, 1), ("core", "system")),
            ((1, 1, 1), ("core",)),
        ],
    )
    def test_level_names_follow_deduplicated_heights(self, dims, names):
        topo = Topology.smp_cmp(*dims)
        assert topo.level_names == names

    @_SETTINGS
    @given(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3))
    def test_every_height_named_and_top_is_system_or_core(self, a, b, c):
        topo = Topology.smp_cmp(a, b, c)
        root = frozenset(range(topo.m))
        top = topo.family.height(root)
        # One name per surviving height, nothing hallucinated beyond.
        assert len(topo.level_names) == top + 1
        assert topo.tier_name(0) == "core"
        assert topo.tier_name(top) == ("system" if topo.m > 1 else "core")
        assert topo.tier_name(top + 1).startswith("level-")


# ---------------------------------------------------------------------------
# Topology builder properties
# ---------------------------------------------------------------------------


class TestTopologyZooProperties:
    def test_zoo_builders_are_laminar_trees_with_singletons(self):
        for name in TOPOLOGIES:
            topo = make_topology(name)
            assert topo.family.is_tree
            assert topo.family.has_all_singletons
            assert topo.m >= 2

    def test_migration_tier_symmetry_zoo(self):
        for name in TOPOLOGIES:
            topo = make_topology(name)
            cores = sorted(topo.machines)
            for a in cores:
                for b in cores:
                    assert topo.migration_tier(a, b) == topo.migration_tier(b, a)
                    assert (topo.migration_tier(a, b) == 0) == (a == b)

    def test_distance_metric_axioms_zoo(self):
        for name in TOPOLOGIES:
            topo = make_topology(name)
            cores = sorted(topo.machines)
            for a in cores:
                assert topo.distance(a, a) == 0
                for b in cores:
                    assert topo.distance(a, b) == topo.distance(b, a)
                    assert topo.distance(a, b) >= 0
                    for c in cores:
                        assert (
                            topo.distance(a, b)
                            <= topo.distance(a, c) + topo.distance(c, b)
                        )

    @_SETTINGS
    @given(st.integers(1, 3), st.integers(1, 4), st.integers(0, 8), st.integers(0, 8))
    def test_tier_distances_yield_an_ultrametric(self, nodes, cpn, near, far):
        topo = Topology.numa(nodes, cpn, near=near, far=near + far)
        cores = sorted(topo.machines)
        for a in cores:
            for b in cores:
                for c in cores:
                    # Ultrametric: d(a,b) ≤ max(d(a,c), d(c,b)).
                    assert topo.distance(a, b) <= max(
                        topo.distance(a, c), topo.distance(c, b)
                    )

    def test_distance_defaults_to_tier(self):
        topo = Topology.smp_cmp(2, 2, 2)
        assert topo.distances is None
        assert topo.distance(0, 1) == 1
        assert topo.distance(0, 7) == 3

    def test_decreasing_tier_profile_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Topology.clustered(4, 2).with_tier_distances([0, 3, 1])
        with pytest.raises(InvalidInstanceError):
            Topology.clustered(4, 2).with_tier_distances([1, 2])

    def test_invalid_matrices_rejected(self):
        fam_topo = Topology.flat(2)
        with pytest.raises(InvalidInstanceError):
            Topology(fam_topo.family, fam_topo.level_names, ((0, 1),))
        with pytest.raises(InvalidInstanceError):  # asymmetric
            Topology(fam_topo.family, fam_topo.level_names, ((0, 1), (2, 0)))
        with pytest.raises(InvalidInstanceError):  # non-zero diagonal
            Topology(fam_topo.family, fam_topo.level_names, ((1, 1), (1, 1)))

    def test_triangle_violation_rejected(self):
        topo = Topology.clustered(3, 3)
        matrix = (
            (0, 1, 5),
            (1, 0, 1),
            (5, 1, 0),
        )
        with pytest.raises(InvalidInstanceError):
            Topology(topo.family, topo.level_names, matrix)

    def test_speeds_validated(self):
        flat = Topology.flat(2)
        with pytest.raises(InvalidInstanceError):
            flat.with_speeds([1])
        with pytest.raises(InvalidInstanceError):
            flat.with_speeds([1, 0])
        hetero = Topology.heterogeneous((3, 1), 2)
        assert hetero.speed(0) == 3 and hetero.speed(2) == 1
        assert hetero.is_heterogeneous
        assert not Topology.heterogeneous((2, 2), 2).is_heterogeneous

    def test_asymmetric_tree_heights(self):
        topo = Topology.asymmetric([[0, 1], [[2, 3], [4, 5]]])
        assert topo.family.is_tree and topo.family.has_all_singletons
        assert topo.mask_tier({0, 1}) == 1
        assert topo.mask_tier({2, 3, 4, 5}) == 2
        # The root sits strictly above its deepest child: system-wide
        # migrations get their own (topmost) tier bucket.
        assert topo.mask_tier(range(6)) == 3
        assert topo.migration_tier(0, 2) == 3
        assert topo.migration_tier(2, 4) == 2
        assert topo.tier_name(0) == "core"
        assert topo.tier_name(3) == "system"

    def test_asymmetric_tiers_monotone_under_inclusion(self):
        # Regression: LaminarFamily.height (shortest path to a leaf) is NOT
        # monotone on uneven trees — a system-wide migration must never be
        # priced below a strictly more local one.
        topo = Topology.asymmetric([[0], [[1, 2], [3, 4]]])
        assert topo.migration_tier(0, 1) > topo.migration_tier(1, 3)
        assert topo.migration_tier(1, 3) > topo.migration_tier(1, 2)
        cores = sorted(topo.machines)
        for a in cores:
            for b in cores:
                for c in cores:
                    # Tier ultrametric: t(a,b) ≤ max(t(a,c), t(c,b)).
                    assert topo.migration_tier(a, b) <= max(
                        topo.migration_tier(a, c), topo.migration_tier(c, b)
                    )

    def test_mask_diameter_monotone(self):
        topo = make_topology("numa2x2")
        chain = [frozenset({0}), frozenset({0, 1}), frozenset(range(4))]
        diameters = [topo.mask_diameter(a) for a in chain]
        assert diameters == sorted(diameters)
        assert diameters[0] == 0


class TestDistancePricing:
    def test_numa_migration_cost_exceeds_local(self):
        topo = make_topology("numa2x2")
        cm = CostModel.numa_like()
        assert cm.migration_cost(topo, 0, 2) > cm.migration_cost(topo, 0, 1)
        assert cm.migration_cost(topo, 0, 0) == 0

    def test_priced_metrics_on_hand_schedule(self):
        from repro import Schedule

        topo = make_topology("numa2x2")
        cm = CostModel.numa_like(rate=1)
        s = Schedule(range(4), 6)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 0, 2, 4)   # intra-node: tier 1, distance 1
        s.add_segment(2, 0, 4, 6)   # cross-node: tier 2, distance 4
        assert migration_tier_histogram(s, topo) == {1: 1, 2: 1}
        expected = (cm.cost_of_tier(1) + 1) + (cm.cost_of_tier(2) + 4)
        assert priced_migration_cost(s, topo, cm) == expected

    def test_rate_zero_reduces_to_tier_model(self):
        topo = make_topology("numa2x2")
        tiered = CostModel.xeon_like()
        assert tiered.migration_cost(topo, 0, 2) == tiered.cost_of_tier(2)


# ---------------------------------------------------------------------------
# Workload families
# ---------------------------------------------------------------------------


class TestFamilies:
    @pytest.mark.parametrize("family_name", sorted(FAMILIES))
    @pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
    def test_families_produce_monotone_instances(self, family_name, topo_name):
        topo = make_topology(topo_name)
        inst = make_instance(family_name, rng_from_seed(7), topo, 5)
        assert inst.family == topo.family
        # Re-validate monotonicity explicitly (generators skip it for speed).
        Instance(
            inst.family,
            {j: {a: inst.p(j, a) for a in inst.family.sets} for j in range(inst.n)},
        )
        assert all(inst.allowed_sets(j) for j in range(inst.n))

    def test_generation_is_seed_deterministic(self):
        topo = make_topology("smp2x2x2")
        for name in sorted(FAMILIES):
            a = make_instance(name, rng_from_seed(11), topo, 6)
            b = make_instance(name, rng_from_seed(11), topo, 6)
            assert all(
                a.p(j, alpha) == b.p(j, alpha)
                for j in range(a.n)
                for alpha in a.family.sets
            )

    def test_aligned_jobs_fit_one_domain(self):
        topo = make_topology("clustered4x2")
        inst = make_instance("aligned", rng_from_seed(3), topo, 8)
        for j in range(inst.n):
            cheap = {
                i for i in sorted(inst.machines)
                if inst.p(j, frozenset([i])) == min(
                    inst.p(j, frozenset([k])) for k in sorted(inst.machines)
                )
            }
            assert any(cheap <= alpha for alpha in inst.family.sets)

    def test_misaligned_jobs_straddle_domains(self):
        topo = make_topology("clustered4x2")
        inst = make_instance("misaligned", rng_from_seed(3), topo, 8)
        root = frozenset(topo.machines)
        clusters = topo.family.children(root)
        for j in range(inst.n):
            mins = min(inst.p(j, frozenset([k])) for k in sorted(inst.machines))
            cheap = {
                i for i in sorted(inst.machines)
                if inst.p(j, frozenset([i])) == mins
            }
            # One cheap core per cluster — no cluster contains two.
            for cluster in clusters:
                assert len(cheap & cluster) == 1

    def test_heterogeneous_family_scales_by_speed(self):
        topo = make_topology("hetero2x2")
        inst = make_instance(
            "heterogeneous", rng_from_seed(5), topo, 6, base_range=(8, 8)
        )
        # Fast cores (speed 2) run base 8 in 4; slow cores in 8.
        for j in range(inst.n):
            assert inst.p(j, frozenset([0])) == 4
            assert inst.p(j, frozenset([3])) == 8

    def test_heavy_tailed_has_flat_profiles(self):
        topo = make_topology("flat4")
        inst = make_instance("heavy_tailed", rng_from_seed(9), topo, 10)
        root = frozenset(topo.machines)
        for j in range(inst.n):
            assert inst.p(j, root) == inst.p(j, frozenset([0]))

    def test_unknown_names_rejected(self):
        with pytest.raises(InvalidInstanceError):
            make_topology("nope")
        with pytest.raises(InvalidInstanceError):
            make_instance("nope", rng_from_seed(1), make_topology("flat4"), 4)


class TestFallbackStressProgram:
    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            fallback_stress_program(cycle=1)
        with pytest.raises(InvalidInstanceError):
            fallback_stress_program(alpha=Fraction(1), beta=Fraction(1))
        with pytest.raises(InvalidInstanceError):
            fallback_stress_program(bound=Fraction(2))  # ≥ alpha + beta

    def test_declared_rho_scales_the_column_bound(self):
        sp = fallback_stress_program(rho_scale=Fraction(1, 2))
        assert sp.rho == sp.true_rho / 2
        assert sp.true_rho == Fraction(4, 3)  # alpha=1 over bound=3/4

    @_SETTINGS
    @given(st.integers(2, 7), st.integers(0, 10**6))
    def test_phase_diagram_holds_for_random_cycles(self, cycle, seed):
        # At the true ρ the certified rules are complete: no fallback.
        sp = fallback_stress_program(
            cycle=cycle, rho_scale=Fraction(1), bound_jitter_denom=16, seed=seed
        )
        result = iterative_round(sp.groups, sp.rows, costs=sp.costs, rho=sp.rho)
        assert result.fallback_drops == 0
        assert result.max_violation_ratio <= 1 + sp.rho
        # At half the column bound the fallback fires and still certifies.
        sp = fallback_stress_program(
            cycle=cycle, rho_scale=Fraction(1, 2), bound_jitter_denom=16, seed=seed
        )
        result = iterative_round(sp.groups, sp.rows, costs=sp.costs, rho=sp.rho)
        assert result.fallback_drops > 0
        assert not result.certification_violations()


# ---------------------------------------------------------------------------
# Periodic unrolling over the zoo
# ---------------------------------------------------------------------------


class TestPeriodicOverZoo:
    @pytest.mark.parametrize("topo_name", ["clustered4x2", "numa2x2", "asym6"])
    def test_interior_instances_match_processing_order(self, topo_name):
        topo = make_topology(topo_name)
        rng = rng_from_seed(23)
        inst = make_instance("aligned", rng, topo, topo.m + 2)
        for _trial in range(3):
            assignment, T = random_feasible_pair(rng, inst)
            schedule = schedule_hierarchical(inst, assignment, T)
            for job in range(inst.n):
                assert interior_instance_migrations(
                    schedule, job, periods=4
                ) == distinct_machine_migrations(schedule, job)

    def test_unroll_preserves_priced_cost_per_period(self):
        topo = make_topology("numa2x2")
        cm = CostModel.numa_like()
        rng = rng_from_seed(31)
        inst = make_instance("misaligned", rng, topo, topo.m + 1)
        assignment, T = random_feasible_pair(rng, inst)
        schedule = schedule_hierarchical(inst, assignment, T)
        periods = 4
        unrolled = unroll(schedule, periods, relabel=False)
        assert unrolled.T == periods * schedule.T
        # Without relabeling every within-period transition recurs each
        # period, so the priced cost is at least periods × one-shot cost.
        assert priced_migration_cost(unrolled, topo, cm) >= periods * (
            priced_migration_cost(schedule, topo, cm)
        ) - periods * cm.cost_of_tier(len(topo.level_names))


# ---------------------------------------------------------------------------
# Experiments E16 / E17
# ---------------------------------------------------------------------------


class TestE16:
    def test_phase_diagram_and_certification(self):
        from repro.experiments import e16_fallback_stress

        result = e16_fallback_stress.run(
            cycles=(3,), rho_percents=(100, 50, 20)
        )
        assert result.fallback_exercised
        assert result.certified_rows_within_limit
        by_percent = {r.rho_percent: r for r in result.rows}
        assert by_percent[100].fallback_drops == 0 and by_percent[100].certified
        assert by_percent[50].fallback_drops > 0 and by_percent[50].certified
        assert not by_percent[20].certified and by_percent[20].violations > 0


class TestE17:
    def test_zoo_comparison_within_guarantee(self):
        from repro.experiments import e17_topology_sensitivity

        result = e17_topology_sensitivity.run(
            topologies=("flat4", "numa2x2"),
            families=("aligned", "misaligned"),
            trials=1,
        )
        assert result.hierarchical_within_guarantee
        assert len(result.rows) == 4
        # Misaligned cheap sets straddle clusters: the clustered class must
        # pay strictly more than hierarchical on the NUMA platform.
        clustered = result.ratio("numa2x2", "misaligned", "clustered")
        hierarchical = result.ratio("numa2x2", "misaligned", "hierarchical")
        assert clustered is not None and hierarchical is not None
        assert clustered > hierarchical
