"""Unit tests for the exact-arithmetic helpers."""

import math
from fractions import Fraction

import pytest

from repro._fraction import INF, as_int_if_integral, fsum, is_inf, rationalize, to_fraction


class TestToFraction:
    def test_int(self):
        assert to_fraction(3) == Fraction(3)

    def test_fraction_passthrough(self):
        f = Fraction(1, 3)
        assert to_fraction(f) is f

    def test_exact_float(self):
        assert to_fraction(0.5) == Fraction(1, 2)

    def test_float_binary_expansion_is_exact(self):
        # 0.1 is not 1/10 in binary; the conversion must be exact, not pretty.
        assert to_fraction(0.1) == Fraction(0.1)
        assert to_fraction(0.1) != Fraction(1, 10)

    def test_numpy_scalar(self):
        import numpy as np

        assert to_fraction(np.int64(7)) == Fraction(7)
        assert to_fraction(np.float64(0.25)) == Fraction(1, 4)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            to_fraction(True)

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            to_fraction(math.inf)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            to_fraction(math.nan)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            to_fraction("1/2")


class TestIsInf:
    def test_inf_sentinel(self):
        assert is_inf(INF)

    def test_finite_values(self):
        assert not is_inf(5)
        assert not is_inf(Fraction(1, 2))
        assert not is_inf(5.0)

    def test_non_numeric(self):
        assert not is_inf("inf")
        assert not is_inf(None)


class TestRationalize:
    def test_snaps_to_simple_rational(self):
        assert rationalize(1 / 3) == Fraction(1, 3)

    def test_integer(self):
        assert rationalize(4.0) == Fraction(4)

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            rationalize(math.inf)


class TestHelpers:
    def test_as_int_if_integral(self):
        assert as_int_if_integral(Fraction(6, 3)) == 2
        assert isinstance(as_int_if_integral(Fraction(6, 3)), int)
        assert as_int_if_integral(Fraction(1, 2)) == Fraction(1, 2)

    def test_fsum_exact(self):
        values = [Fraction(1, 3)] * 3
        assert fsum(values) == 1

    def test_fsum_mixed_types(self):
        assert fsum([1, Fraction(1, 2), 0.5]) == 2

    def test_fsum_empty(self):
        assert fsum([]) == 0
