"""Tests for the Gantt renderer, exact serialization and the CLI."""

from fractions import Fraction

import pytest

from repro import Assignment, Schedule
from repro.analysis.gantt import job_label, render_gantt
from repro.cli import main as cli_main
from repro.exceptions import InvalidScheduleError
from repro.schedule.serialize import (
    assignment_from_dict,
    assignment_to_dict,
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)


class TestGantt:
    def test_labels_cycle(self):
        assert job_label(0) == "0"
        assert job_label(10) == "a"
        assert job_label(36) == "A"
        assert job_label(62) == "0"

    def test_render_contains_jobs_and_idle(self):
        s = Schedule([0, 1], 4)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 1, 2, 4)
        out = render_gantt(s, width=8)
        lines = out.splitlines()
        assert lines[0].startswith("m0")
        assert "0" in lines[0] and "." in lines[0]
        assert "1" in lines[1]

    def test_render_empty(self):
        s = Schedule([0], 0)
        assert "empty" in render_gantt(s)

    def test_tiny_segment_still_visible(self):
        s = Schedule([0], 100)
        s.add_segment(0, 7, 0, Fraction(1, 10))
        out = render_gantt(s, width=20)
        assert "7" in out

    def test_fractional_boundaries(self):
        s = Schedule([0], Fraction(7, 2))
        s.add_segment(0, 0, Fraction(1, 3), Fraction(7, 2))
        out = render_gantt(s, width=21)
        assert "0" in out


class TestSerialize:
    def _sample(self):
        s = Schedule([0, 1], Fraction(5, 2))
        s.add_segment(0, 0, 0, Fraction(3, 2))
        s.add_segment(1, 0, Fraction(3, 2), Fraction(5, 2))
        s.add_segment(1, 1, 0, 1)
        return s

    def test_roundtrip_dict(self):
        s = self._sample()
        restored = schedule_from_dict(schedule_to_dict(s))
        assert restored.T == s.T
        assert restored.machines == s.machines
        for m in s.machines:
            assert restored.timeline(m).segments == s.timeline(m).segments

    def test_roundtrip_json_exact_fractions(self):
        s = self._sample()
        text = schedule_to_json(s)
        restored = schedule_from_json(text)
        assert restored.job_segments(0) == s.job_segments(0)
        assert "3/2" in text  # fractions stored exactly, not as floats

    def test_malformed_document_raises(self):
        with pytest.raises(InvalidScheduleError):
            schedule_from_dict({"T": "1/1"})

    def test_overlap_rejected_on_load(self):
        data = {
            "T": "4/1",
            "machines": [0],
            "segments": [
                {"machine": 0, "job": 0, "start": "0/1", "end": "2/1"},
                {"machine": 0, "job": 1, "start": "1/1", "end": "3/1"},
            ],
        }
        with pytest.raises(InvalidScheduleError):
            schedule_from_dict(data)

    def test_assignment_roundtrip(self):
        a = Assignment({0: {0}, 1: {0, 1}})
        restored = assignment_from_dict(assignment_to_dict(a))
        assert restored == a


class TestCLI:
    def test_version(self, capsys):
        assert cli_main(["version"]) == 0
        assert capsys.readouterr().out.strip()

    def test_solve_demo_ii1(self, capsys):
        assert cli_main(["solve", "--demo", "ii1"]) == 0
        out = capsys.readouterr().out
        assert "exact optimum: 2" in out
        assert "2-approximation" in out

    def test_solve_unknown_demo(self, capsys):
        assert cli_main(["solve", "--demo", "nope"]) == 2

    def test_experiments_subset(self, capsys):
        assert cli_main(["experiments", "e01"]) == 0
        assert "E01" in capsys.readouterr().out

    def test_experiments_unknown(self, capsys):
        assert cli_main(["experiments", "e99"]) == 2

    def test_no_command_prints_help(self, capsys):
        assert cli_main([]) == 1
        assert "usage" in capsys.readouterr().out
