"""Tests for the Section II 8-approximation and the preemptive R|pmtn|Cmax LP."""

from fractions import Fraction

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import INF, GeneralMaskInstance, eight_approximation
from repro.baselines.preemptive_unrelated import preemptive_makespan, preemptive_schedule
from repro.exceptions import InfeasibleError, InvalidInstanceError, MonotonicityError
from repro.workloads import rng_from_seed


class TestGeneralMaskInstance:
    def test_laminar_detection(self):
        laminar = GeneralMaskInstance(
            range(2), [{0, 1}, {0}], {0: {frozenset({0}): 1, frozenset({0, 1}): 2}}
        )
        assert laminar.is_laminar()
        crossing = GeneralMaskInstance(
            range(3),
            [{0, 1}, {1, 2}],
            {0: {frozenset({0, 1}): 1, frozenset({1, 2}): 1}},
        )
        assert not crossing.is_laminar()

    def test_monotonicity_enforced_on_comparable_pairs(self):
        with pytest.raises(MonotonicityError):
            GeneralMaskInstance(
                range(2),
                [{0, 1}, {0}],
                {0: {frozenset({0}): 5, frozenset({0, 1}): 2}},
            )

    def test_incomparable_sets_unconstrained(self):
        gmi = GeneralMaskInstance(
            range(3),
            [{0, 1}, {1, 2}],
            {0: {frozenset({0, 1}): 1, frozenset({1, 2}): 100}},
        )
        assert gmi.p(0, {1, 2}) == 100

    def test_collapse_matrix(self):
        gmi = GeneralMaskInstance(
            range(3),
            [{0, 1}, {1, 2}],
            {0: {frozenset({0, 1}): 3, frozenset({1, 2}): 5}},
        )
        p = gmi.collapse_matrix()
        assert p[0] == {0: 3, 1: 3, 2: 5}

    def test_cheapest_mask_through(self):
        gmi = GeneralMaskInstance(
            range(3),
            [{0, 1}, {1, 2}],
            {0: {frozenset({0, 1}): 3, frozenset({1, 2}): 5}},
        )
        assert gmi.cheapest_mask_through(0, 1) == frozenset({0, 1})
        assert gmi.cheapest_mask_through(0, 2) == frozenset({1, 2})

    def test_unknown_set_rejected(self):
        with pytest.raises(InvalidInstanceError):
            GeneralMaskInstance(range(2), [{0}], {0: {frozenset({1}): 1}})


class TestPreemptiveUnrelated:
    def test_identical_machines_matches_mcnaughton(self):
        # R|pmtn with equal speeds degenerates to max(max p, Σp/m).
        p = {j: {i: 3 for i in range(2)} for j in range(3)}
        assert preemptive_makespan(p) == Fraction(9, 2)

    def test_single_machine(self):
        assert preemptive_makespan({0: {0: 4}, 1: {0: 1}}) == 5

    def test_speed_heterogeneity_exploited(self):
        # Job runs at speed 1 on m0 and 2x on m1: splitting beats pinning.
        p = {0: {0: 2, 1: 1}}
        assert preemptive_makespan(p) <= 1

    def test_zero_time_job_free(self):
        p = {0: {0: 0, 1: 5}, 1: {0: 3}}
        assert preemptive_makespan(p) == 3

    def test_infeasible_job(self):
        with pytest.raises(InfeasibleError):
            preemptive_makespan({0: {}})

    def test_schedule_matches_makespan_and_is_consistent(self):
        p = {0: {0: 3, 1: 3}, 1: {0: 3, 1: 3}, 2: {0: 3, 1: 3}}
        T, schedule = preemptive_schedule(p)
        assert T == Fraction(9, 2)
        assert schedule.makespan() <= T
        # machine-exclusivity is enforced by construction; check per-job
        # completion: each job's processed fraction must equal 1.
        for j in range(3):
            fraction_done = sum(
                (seg.length / Fraction(p[j][m]) for m, seg in schedule.job_segments(j)),
                Fraction(0),
            )
            assert fraction_done == 1
        # no job overlaps itself
        for j in range(3):
            segs = sorted(
                (seg for _m, seg in schedule.job_segments(j)),
                key=lambda s: s.start,
            )
            for a, b in zip(segs, segs[1:]):
                assert a.end <= b.start

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10**6))
    def test_schedule_validity_random(self, seed):
        rng = rng_from_seed(seed)
        n = int(rng.integers(1, 5))
        m = int(rng.integers(1, 4))
        p = {j: {i: int(rng.integers(1, 9)) for i in range(m)} for j in range(n)}
        T, schedule = preemptive_schedule(p)
        for j in range(n):
            done = sum(
                (seg.length / Fraction(p[j][mach]) for mach, seg in schedule.job_segments(j)),
                Fraction(0),
            )
            assert done == 1
            segs = sorted(
                (seg for _m2, seg in schedule.job_segments(j)), key=lambda s: s.start
            )
            for a, b in zip(segs, segs[1:]):
                assert a.end <= b.start
        # The LP optimum lower-bounds any alternative: spot-check bounds.
        total_min = sum(min(p[j].values()) for j in range(n))
        assert T >= Fraction(total_min, m)


class TestEightApproximation:
    @pytest.fixture
    def crossing_instance(self):
        return GeneralMaskInstance(
            machines=range(3),
            sets=[{0, 1}, {1, 2}, {0}, {1}, {2}],
            processing={
                0: {frozenset({0, 1}): 4, frozenset({0}): 3, frozenset({1}): 3},
                1: {frozenset({1, 2}): 4, frozenset({1}): 2, frozenset({2}): 2},
                2: {frozenset({0}): 5, frozenset({0, 1}): 6, frozenset({1}): 5},
            },
        )

    def test_bound_holds(self, crossing_instance):
        result = eight_approximation(crossing_instance)
        assert result.makespan <= result.bound
        assert result.ratio_vs_lower_bound <= 8

    def test_masks_contain_assigned_machines(self, crossing_instance):
        result = eight_approximation(crossing_instance)
        for j, machine in result.machine_of.items():
            assert machine in result.mask_of[j]

    def test_schedule_is_partitioned(self, crossing_instance):
        result = eight_approximation(crossing_instance)
        for j in result.machine_of:
            machines = {m for m, _seg in result.schedule.job_segments(j)}
            assert len(machines) <= 1

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10**6))
    def test_ratio_random_crossing_families(self, seed):
        rng = rng_from_seed(seed)
        m = int(rng.integers(3, 5))
        n = int(rng.integers(2, 6))
        # Random overlapping (non-laminar) windows of machines.
        sets = []
        for _ in range(3):
            start = int(rng.integers(0, m - 1))
            width = int(rng.integers(2, m - start + 1))
            sets.append(frozenset(range(start, start + width)))
        sets = list({*sets, *(frozenset([i]) for i in range(m))})
        processing = {}
        for j in range(n):
            base = int(rng.integers(1, 9))
            row = {}
            for alpha in sets:
                row[alpha] = base + len(alpha) * int(rng.integers(0, 3))
            # enforce monotonicity on comparable pairs by lifting parents
            for a in sets:
                for b in sets:
                    if a < b and row[a] > row[b]:
                        row[b] = row[a]
            processing[j] = row
        gmi = GeneralMaskInstance(range(m), sets, processing)
        result = eight_approximation(gmi)
        assert result.ratio_vs_lower_bound <= 8
