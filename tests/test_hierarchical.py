"""Tests for Algorithms 2+3 — the hierarchical two-phase scheduler."""

from fractions import Fraction

import pytest

from repro import (
    Assignment,
    INF,
    Instance,
    LaminarFamily,
    min_T_for_assignment,
    schedule_assignment,
    schedule_hierarchical,
    validate_schedule,
)
from repro.core.hierarchical import allocate_loads
from repro.exceptions import InfeasibleError, InvalidAssignmentError


@pytest.fixture
def clustered_instance():
    """4 machines in 2 clusters; 6 jobs with mixed masks."""
    return Instance.clustered(
        2,
        p_local=[[2, 2, 2, 2]] * 6,
        p_cluster=[[3, 3]] * 6,
        p_global=[4] * 6,
    )


class TestAllocateLoads:
    def test_volume_fully_allocated(self, clustered_instance):
        cluster0 = frozenset({0, 1})
        a = Assignment({0: cluster0, 1: cluster0, 2: {2}, 3: {3}, 4: {0}, 5: {1}})
        T = min_T_for_assignment(clustered_instance, a)
        alloc = allocate_loads(clustered_instance, a, T)
        total = sum(alloc.load.values(), Fraction(0))
        # Each set's volume is conserved: Σ_i LOAD[i,α] = vol(α).
        assert total == sum(
            clustered_instance.p(j, a[j]) for j in range(6)
        )

    def test_lemma_iv1_tot_load_bounded(self, clustered_instance):
        root = frozenset(range(4))
        a = Assignment({j: root for j in range(6)})
        T = min_T_for_assignment(clustered_instance, a)
        alloc = allocate_loads(clustered_instance, a, T)
        for (i, alpha), value in alloc.tot_load.items():
            assert value <= T

    def test_lemma_iv2_at_most_one_shared_machine(self, clustered_instance):
        cluster0 = frozenset({0, 1})
        cluster1 = frozenset({2, 3})
        root = frozenset(range(4))
        a = Assignment(
            {0: {0}, 1: cluster0, 2: cluster0, 3: cluster1, 4: root, 5: root}
        )
        T = min_T_for_assignment(clustered_instance, a)
        alloc = allocate_loads(clustered_instance, a, T)
        fam = clustered_instance.family
        for beta in fam.sets:
            assert len(alloc.shared_machines(fam, beta)) <= 1

    def test_infeasible_volume_raises(self, clustered_instance):
        root = frozenset(range(4))
        a = Assignment({j: root for j in range(6)})
        with pytest.raises(InfeasibleError):
            allocate_loads(clustered_instance, a, 2)  # 24 volume > 4·2


class TestScheduleHierarchical:
    def test_example_iii1_via_hierarchical(self, instance_ii1, assignment_ii1):
        s = schedule_hierarchical(instance_ii1, assignment_ii1, 2)
        assert validate_schedule(instance_ii1, assignment_ii1, s, T=2).valid

    def test_three_level_mixed_masks(self, clustered_instance):
        cluster0 = frozenset({0, 1})
        cluster1 = frozenset({2, 3})
        root = frozenset(range(4))
        a = Assignment(
            {0: {0}, 1: cluster0, 2: cluster0, 3: cluster1, 4: root, 5: root}
        )
        T = min_T_for_assignment(clustered_instance, a)
        s = schedule_hierarchical(clustered_instance, a, T)
        report = validate_schedule(clustered_instance, a, s, T=T)
        assert report.valid

    def test_agrees_with_algorithm1_on_semi_partitioned(self, instance_ii1, assignment_ii1):
        from repro import schedule_semi_partitioned

        s1 = schedule_semi_partitioned(instance_ii1, assignment_ii1, 2)
        s2 = schedule_hierarchical(instance_ii1, assignment_ii1, 2)
        for s in (s1, s2):
            assert validate_schedule(instance_ii1, assignment_ii1, s, T=2).valid
        assert s1.makespan() == s2.makespan() == 2

    def test_forest_family(self):
        # Two disjoint clusters with no root: a laminar forest.
        fam = LaminarFamily([0, 1, 2, 3], [[0, 1], [2, 3], [0], [1], [2], [3]])
        inst = Instance(
            fam,
            {
                0: {frozenset({0, 1}): 2, frozenset({0}): 2, frozenset({1}): 2},
                1: {frozenset({2, 3}): 2, frozenset({2}): 2, frozenset({3}): 2},
                2: {frozenset({0, 1}): 2, frozenset({0}): 1, frozenset({1}): 1},
            },
        )
        a = Assignment({0: frozenset({0, 1}), 1: frozenset({2, 3}), 2: {0}})
        T = min_T_for_assignment(inst, a)
        s = schedule_hierarchical(inst, a, T)
        assert validate_schedule(inst, a, s, T=T).valid

    def test_deep_chain_family(self):
        # Nested chain {0} ⊂ {0,1} ⊂ {0,1,2} ⊂ {0,1,2,3} stresses the
        # top-down chaining of start positions.
        fam = LaminarFamily(
            [0, 1, 2, 3],
            [[0, 1, 2, 3], [0, 1, 2], [0, 1], [0], [1], [2], [3]],
        )
        processing = {}
        for j in range(5):
            processing[j] = {alpha: 2 + len(alpha) for alpha in fam.sets}
        inst = Instance(fam, processing)
        a = Assignment(
            {
                0: frozenset({0}),
                1: frozenset({0, 1}),
                2: frozenset({0, 1, 2}),
                3: frozenset({0, 1, 2, 3}),
                4: frozenset({1}),
            }
        )
        T = min_T_for_assignment(inst, a)
        s = schedule_hierarchical(inst, a, T)
        assert validate_schedule(inst, a, s, T=T).valid

    def test_uncovered_machine_in_internal_set(self):
        # {0,1,2} has child {0,1} only; machine 2 is uncovered below the set.
        fam = LaminarFamily([0, 1, 2], [[0, 1, 2], [0, 1], [0], [1]])
        inst = Instance(
            fam,
            {
                0: {frozenset({0, 1, 2}): 3, frozenset({0, 1}): 3, frozenset({0}): 3, frozenset({1}): 3},
                1: {frozenset({0, 1, 2}): 3, frozenset({0, 1}): 2, frozenset({0}): 2, frozenset({1}): 2},
            },
        )
        a = Assignment({0: frozenset({0, 1, 2}), 1: frozenset({0, 1})})
        T = min_T_for_assignment(inst, a)
        s = schedule_hierarchical(inst, a, T)
        assert validate_schedule(inst, a, s, T=T).valid

    def test_infeasible_rejected(self, clustered_instance):
        root = frozenset(range(4))
        a = Assignment({j: root for j in range(6)})
        with pytest.raises(InvalidAssignmentError):
            schedule_hierarchical(clustered_instance, a, 2)

    def test_zero_horizon(self):
        inst = Instance.identical(2, [0, 0])
        root = frozenset({0, 1})
        a = Assignment({0: root, 1: root})
        s = schedule_hierarchical(inst, a, 0)
        assert validate_schedule(inst, a, s, T=0).valid


class TestScheduleAssignment:
    def test_defaults_to_min_T(self, instance_ii1, assignment_ii1):
        s = schedule_assignment(instance_ii1, assignment_ii1)
        assert s.T == 2
        assert validate_schedule(instance_ii1, assignment_ii1, s).valid

    def test_explicit_T(self, instance_ii1, assignment_ii1):
        s = schedule_assignment(instance_ii1, assignment_ii1, T=4)
        assert s.T == 4
        assert validate_schedule(instance_ii1, assignment_ii1, s, T=4).valid
