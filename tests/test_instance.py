"""Unit tests for the Instance model."""

from fractions import Fraction

import pytest

from repro import INF, Instance, LaminarFamily
from repro.exceptions import InvalidInstanceError, MonotonicityError


class TestConstructors:
    def test_identical(self):
        inst = Instance.identical(3, [2, 4, 6])
        assert inst.n == 3 and inst.m == 3
        root = frozenset(range(3))
        assert inst.p(1, root) == 4
        assert len(inst.family) == 1

    def test_unrelated(self):
        inst = Instance.unrelated([[1, 2], [3, 4]])
        assert inst.p(0, {0}) == 1
        assert inst.p(1, {1}) == 4
        assert inst.family.num_levels == 1

    def test_semi_partitioned(self):
        inst = Instance.semi_partitioned(p_local=[[1, 2]], p_global=[3])
        assert inst.p(0, {0}) == 1
        assert inst.p(0, {0, 1}) == 3

    def test_clustered(self):
        inst = Instance.clustered(
            2,
            p_local=[[1, 1, 1, 1]],
            p_cluster=[[2, 2]],
            p_global=[3],
        )
        assert inst.p(0, {0, 1}) == 2
        assert inst.p(0, {0, 1, 2, 3}) == 3

    def test_callable_processing(self):
        fam = LaminarFamily.semi_partitioned(2)
        inst = Instance(fam, lambda j, a: len(a) + j, n=2)
        assert inst.p(1, {0, 1}) == 3

    def test_callable_requires_n(self):
        fam = LaminarFamily.semi_partitioned(2)
        with pytest.raises(InvalidInstanceError):
            Instance(fam, lambda j, a: 1)

    def test_missing_larger_sets_default_to_inf(self):
        # Monotonicity only permits omitting *supersets*: P(child) ≤ P(parent)
        # holds with P(parent) = ∞, never the other way around.
        fam = LaminarFamily.semi_partitioned(2)
        inst = Instance(fam, {0: {frozenset({0}): 5}})
        assert inst.p(0, {0, 1}) == INF
        assert inst.p(0, {1}) == INF
        assert inst.allows(0, {0})
        assert not inst.allows(0, {0, 1})

    def test_job_numbering_must_be_dense(self):
        fam = LaminarFamily.global_only(2)
        with pytest.raises(InvalidInstanceError):
            Instance(fam, {0: {frozenset({0, 1}): 1}, 2: {frozenset({0, 1}): 1}})

    def test_unknown_set_raises(self):
        fam = LaminarFamily.global_only(2)
        with pytest.raises(InvalidInstanceError):
            Instance(fam, {0: {frozenset({0}): 1}})

    def test_negative_time_raises(self):
        fam = LaminarFamily.global_only(2)
        with pytest.raises(InvalidInstanceError):
            Instance(fam, {0: {frozenset({0, 1}): -1}})

    def test_empty_instance_raises(self):
        fam = LaminarFamily.global_only(2)
        with pytest.raises(InvalidInstanceError):
            Instance(fam, {})


class TestMonotonicity:
    def test_violation_detected(self):
        with pytest.raises(MonotonicityError):
            Instance.semi_partitioned(p_local=[[5, 5]], p_global=[3])

    def test_inf_on_child_finite_on_parent_rejected(self):
        # P({0}) = ∞ > P(M) finite violates monotonicity.
        with pytest.raises(MonotonicityError):
            Instance.semi_partitioned(p_local=[[INF, 1]], p_global=[2])

    def test_inf_on_parent_allowed(self):
        inst = Instance.semi_partitioned(p_local=[[1, 1]], p_global=[INF])
        assert inst.p(0, {0, 1}) == INF

    def test_equal_times_allowed(self):
        inst = Instance.semi_partitioned(p_local=[[2, 2]], p_global=[2])
        assert inst.p(0, {0}) == inst.p(0, {0, 1})

    def test_validate_false_skips_check(self):
        inst = Instance(
            LaminarFamily.semi_partitioned(2),
            {0: {frozenset({0}): 5, frozenset({1}): 5, frozenset({0, 1}): 3}},
            validate=False,
        )
        assert inst.p(0, {0}) == 5


class TestQueries:
    def test_allowed_sets(self, instance_ii1):
        assert instance_ii1.allowed_sets(0) == (frozenset({0}),)
        assert len(instance_ii1.allowed_sets(2)) == 3

    def test_effective_p_minimal_containing(self):
        inst = Instance.clustered(
            2, p_local=[[1, 1, 1, 1]], p_cluster=[[2, 2]], p_global=[4]
        )
        assert inst.effective_p(0, {0}) == 1
        assert inst.effective_p(0, {0, 1}) == 2
        assert inst.effective_p(0, {0, 2}) == 4

    def test_effective_p_uncontained(self):
        inst = Instance.unrelated([[1, 2]])
        assert inst.effective_p(0, {0, 1}) == INF

    def test_min_p(self, instance_ii1):
        assert instance_ii1.min_p(0) == 1
        assert instance_ii1.min_p(2) == 2

    def test_trivial_bounds(self):
        inst = Instance.identical(2, [3, 3, 3])
        lower, upper = inst.trivial_bounds()
        assert lower == Fraction(9, 2)
        assert upper == 9

    def test_trivial_bounds_infeasible_job(self):
        fam = LaminarFamily.global_only(2)
        inst = Instance(fam, {0: {frozenset({0, 1}): INF}})
        with pytest.raises(InvalidInstanceError):
            inst.trivial_bounds()

    def test_repr(self, instance_ii1):
        assert "n=3" in repr(instance_ii1)


class TestDerivedInstances:
    def test_with_singletons_noop_when_present(self, instance_ii1):
        assert instance_ii1.with_singletons() is instance_ii1

    def test_with_singletons_inherits_minimal_containing(self):
        fam = LaminarFamily([0, 1], [[0, 1]])
        inst = Instance(fam, {0: {frozenset({0, 1}): 7}})
        ext = inst.with_singletons()
        assert ext.p(0, {0}) == 7
        assert ext.p(0, {1}) == 7
        assert ext.family.has_all_singletons

    def test_unrelated_collapse_takes_min_over_masks(self):
        # Without singletons in the family the collapse minimum is over the
        # clusters and the root: min(3, 4) = 3 on every machine.
        fam = LaminarFamily([0, 1, 2, 3], [[0, 1, 2, 3], [0, 1], [2, 3]])
        inst = Instance(
            fam,
            {0: {frozenset({0, 1}): 3, frozenset({2, 3}): 3, frozenset(range(4)): 4}},
        )
        iu = inst.unrelated_collapse()
        for i in range(4):
            assert iu.p(0, {i}) == 3

    def test_unrelated_collapse_with_singletons_is_singleton_time(self):
        # Monotonicity makes the singleton the cheapest mask through i.
        inst = Instance.clustered(
            2, p_local=[[1, 2, 3, 4]], p_cluster=[[2, 4]], p_global=[4]
        )
        iu = inst.unrelated_collapse()
        assert [iu.p(0, {i}) for i in range(4)] == [1, 2, 3, 4]

    def test_unrelated_collapse_example_ii1(self, instance_ii1):
        iu = instance_ii1.unrelated_collapse()
        assert iu.p(0, {0}) == 1
        assert iu.p(0, {1}) == INF
        assert iu.p(2, {0}) == 2
