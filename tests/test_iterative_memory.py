"""Tests for Lemma VI.2's iterative rounding and the Section VI memory models."""

from fractions import Fraction

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import Instance, LaminarFamily, validate_schedule
from repro.core.memory import (
    harmonic,
    minimal_model1_T,
    minimal_model2_T,
    model1_lp_feasible,
    model2_lp_feasible,
    model2_rho,
    solve_model1,
    solve_model2,
)
from repro.exceptions import (
    InfeasibleError,
    InvalidInstanceError,
    RoundingCertificationError,
    RoundingError,
)
from repro.rounding.iterative import PackingRow, column_rho, iterative_round
from repro.workloads import rng_from_seed


class TestHarmonic:
    def test_values(self):
        assert harmonic(1) == 1
        assert harmonic(2) == Fraction(3, 2)
        assert harmonic(4) == Fraction(25, 12)


class TestIterativeRound:
    def test_integral_input_untouched(self):
        groups = {0: [("a", 0)], 1: [("b", 1)]}
        rows = [PackingRow("r", {("a", 0): Fraction(1)}, Fraction(2))]
        result = iterative_round(groups, rows)
        assert result.values == {("a", 0): 1, ("b", 1): 1}
        assert result.dropped_rows == []

    def test_assignment_rows_exact(self):
        groups = {j: [(i, j) for i in range(3)] for j in range(4)}
        rows = [
            PackingRow(
                f"load[{i}]",
                {(i, j): Fraction(2) for j in range(4)},
                Fraction(3),
            )
            for i in range(3)
        ]
        result = iterative_round(groups, rows)
        for j in range(4):
            assert sum(result.values[(i, j)] for i in range(3)) == 1

    def test_violation_bounded_by_one_plus_rho(self):
        groups = {j: [(i, j) for i in range(2)] for j in range(4)}
        rows = [
            PackingRow(
                f"load[{i}]",
                {(i, j): Fraction(1) for j in range(4)},
                Fraction(2),
            )
            for i in range(2)
        ]
        rho = column_rho(groups, rows)
        result = iterative_round(groups, rows, rho=rho)
        assert result.max_violation_ratio <= 1 + rho

    def test_cost_never_worsens(self):
        groups = {0: [("a", 0), ("b", 0)]}
        rows = [PackingRow("r", {("a", 0): Fraction(1)}, Fraction(1))]
        costs = {("a", 0): Fraction(5), ("b", 0): Fraction(1)}
        result = iterative_round(groups, rows, costs=costs)
        assert result.objective == 1  # picks the cheap candidate

    def test_empty_group_raises(self):
        with pytest.raises(InfeasibleError):
            iterative_round({0: []}, [])

    def test_duplicate_key_across_groups_raises(self):
        with pytest.raises(RoundingError):
            iterative_round({0: [("a",)], 1: [("a",)]}, [])

    def test_infeasible_lp_raises(self):
        groups = {0: [("a", 0)]}
        rows = [PackingRow("r", {("a", 0): Fraction(5)}, Fraction(1))]
        with pytest.raises(InfeasibleError):
            iterative_round(groups, rows)

    def test_column_rho(self):
        groups = {0: [("a", 0)]}
        rows = [
            PackingRow("r1", {("a", 0): Fraction(1)}, Fraction(2)),
            PackingRow("r2", {("a", 0): Fraction(3)}, Fraction(3)),
        ]
        assert column_rho(groups, rows) == Fraction(3, 2)

    def test_negative_bound_raises(self):
        with pytest.raises(RoundingError):
            PackingRow("r", {("a", 0): Fraction(1)}, Fraction(-1))

    def test_negative_coefficient_raises(self):
        with pytest.raises(RoundingError):
            PackingRow("r", {("a", 0): Fraction(-1)}, Fraction(1))

    def test_zero_bound_rows_skipped_by_column_rho(self):
        # b = 0 rows carry no rounding slack: they are excluded from ρ
        # instead of dividing by zero.
        groups = {0: [("a", 0), ("b", 0)]}
        rows = [
            PackingRow("zero", {("a", 0): Fraction(1)}, Fraction(0)),
            PackingRow("r", {("a", 0): Fraction(1), ("b", 0): Fraction(2)}, Fraction(4)),
        ]
        assert column_rho(groups, rows) == Fraction(1, 2)

    def test_zero_bound_row_forces_exact_satisfaction(self):
        # The candidate with positive weight on the b = 0 row can never be
        # chosen; the sibling gets the assignment and usage stays 0.
        groups = {0: [("a", 0), ("b", 0)]}
        rows = [PackingRow("zero", {("a", 0): Fraction(3)}, Fraction(0))]
        result = iterative_round(groups, rows)
        assert result.values == {("a", 0): 0, ("b", 0): 1}
        assert result.row_usage["zero"] == 0
        assert result.certified_limits["zero"] == 0

    def test_zero_bound_infeasible_when_unavoidable(self):
        # Fractional (here: integral 1) weight on a zero-bound row is
        # infeasible by convention.
        groups = {0: [("a", 0)]}
        rows = [PackingRow("zero", {("a", 0): Fraction(1)}, Fraction(0))]
        with pytest.raises(InfeasibleError):
            iterative_round(groups, rows)

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10**6))
    def test_lemma_vi2_guarantee_random(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        m = int(rng.integers(2, 4))
        groups = {j: [(i, j) for i in range(m)] for j in range(n)}
        # Feasible by construction: bounds sized for the fractional spread.
        coeffs = {
            (i, j): Fraction(int(rng.integers(1, 5))) for i in range(m) for j in range(n)
        }
        rows = []
        for i in range(m):
            total = sum(coeffs[(i, j)] for j in range(n))
            rows.append(
                PackingRow(
                    f"r{i}",
                    {(i, j): coeffs[(i, j)] for j in range(n)},
                    max(Fraction(total, m), max(coeffs[(i, j)] for j in range(n))),
                )
            )
        rho = column_rho(groups, rows)
        result = iterative_round(groups, rows, rho=rho)
        # Lemma VI.2's claim: every packing row within (1 + ρ)·b.
        assert result.max_violation_ratio <= 1 + rho
        for j in range(n):
            assert sum(result.values[(i, j)] for i in range(m)) == 1


def _odd_cycle_program(c=3):
    """The E16 stress shape: c groups locked on a cycle of c tight rows."""
    from repro.workloads.families import fallback_stress_program

    program = fallback_stress_program(cycle=c)
    return program.groups, program.rows, program.costs


class TestSelfCertification:
    """The hardened Lemma VI.2 fallback (ISSUE 3 regression tests)."""

    def test_fallback_unreachable_at_column_rho(self):
        # With ρ = column_rho the residual rule is complete (module
        # docstring): the fallback never fires on the adversarial cycle.
        groups, rows, costs = _odd_cycle_program()
        result = iterative_round(groups, rows, costs=costs)
        assert result.fallback_drops == 0
        assert result.max_violation_ratio <= 1 + column_rho(groups, rows)

    def test_fallback_fires_and_certifies(self):
        # Declaring ρ below the column bound reaches the fallback; the
        # achieved usage still passes the (1+ρ) self-certification.
        groups, rows, costs = _odd_cycle_program()
        rho = column_rho(groups, rows) / 2
        result = iterative_round(groups, rows, costs=costs, rho=rho)
        assert result.fallback_drops > 0
        assert not result.certification_violations()
        assert all(
            result.row_usage[n] <= result.certified_limits[n]
            for n in result.row_bounds
        )

    def test_certification_violation_raises_structured(self):
        groups, rows, costs = _odd_cycle_program()
        rho = column_rho(groups, rows) / 8
        with pytest.raises(RoundingCertificationError) as excinfo:
            iterative_round(groups, rows, costs=costs, rho=rho)
        err = excinfo.value
        assert err.violations
        for name, (usage, limit, bound) in err.violations.items():
            assert usage > limit
            assert limit == (1 + rho) * bound
        assert err.result is not None and err.result.fallback_drops > 0

    def test_certify_false_returns_uncertified_result(self):
        groups, rows, costs = _odd_cycle_program()
        rho = column_rho(groups, rows) / 8
        result = iterative_round(
            groups, rows, costs=costs, rho=rho, certify=False
        )
        assert result.fallback_drops > 0
        assert result.certification_violations()
        with pytest.raises(RoundingCertificationError):
            result.certify()

    def test_certification_error_survives_pickling(self):
        # Sweep workers raise across a process pool: the structured error
        # must round-trip through pickle with its violations intact.
        import pickle

        groups, rows, costs = _odd_cycle_program()
        rho = column_rho(groups, rows) / 8
        with pytest.raises(RoundingCertificationError) as excinfo:
            iterative_round(groups, rows, costs=costs, rho=rho)
        clone = pickle.loads(pickle.dumps(excinfo.value))
        assert clone.violations == excinfo.value.violations
        assert clone.result.fallback_drops == excinfo.value.result.fallback_drops
        assert str(clone) == str(excinfo.value)

    def test_kept_rows_certified_at_their_bound(self):
        groups = {0: [("a", 0)], 1: [("b", 1)]}
        rows = [PackingRow("r", {("a", 0): Fraction(1)}, Fraction(2))]
        result = iterative_round(groups, rows)
        assert result.certified_limits == {"r": Fraction(2)}


@pytest.fixture
def memory_instance():
    return Instance.semi_partitioned(
        p_local=[[2, 2], [2, 2], [2, 2], [2, 2]],
        p_global=[3, 3, 3, 3],
    )


class TestModel1:
    def test_round_and_schedule(self, memory_instance):
        space = [[1, 1]] * 4
        budgets = {0: 2, 1: 2}
        T = minimal_model1_T(memory_instance, space, budgets)
        result = solve_model1(memory_instance, space, budgets, T)
        assert result.makespan_ratio <= 3
        assert result.max_memory_ratio <= 3
        report = validate_schedule(
            result.instance, result.assignment, result.schedule
        )
        assert report.valid

    def test_lp_feasibility_monotone_in_T(self, memory_instance):
        space = [[1, 1]] * 4
        budgets = {0: 2, 1: 2}
        T = minimal_model1_T(memory_instance, space, budgets)
        assert model1_lp_feasible(memory_instance, space, budgets, T)
        assert not model1_lp_feasible(
            memory_instance, space, budgets, T - Fraction(1, 2)
        )

    def test_oversized_footprint_pruned(self, memory_instance):
        # A job whose footprint exceeds every budget cannot be placed.
        space = [[5, 5]] + [[1, 1]] * 3
        budgets = {0: 2, 1: 2}
        with pytest.raises(InfeasibleError):
            solve_model1(memory_instance, space, budgets, 10)

    def test_global_mask_charges_all_machines(self):
        # One job forced global: its footprint counts on both machines.
        from repro import INF

        inst = Instance.semi_partitioned(p_local=[[2, 2]], p_global=[2])
        space = [[2, 2]]
        result = solve_model1(inst, space, {0: 2, 1: 2}, 2)
        j_mask = result.assignment[0]
        for i in j_mask:
            assert result.memory_usage[i] == 2

    def test_nonpositive_budget_raises(self, memory_instance):
        with pytest.raises(InvalidInstanceError):
            solve_model1(memory_instance, [[1, 1]] * 4, {0: 0, 1: 2}, 10)


class TestModel2:
    @pytest.fixture
    def tree_instance(self):
        return Instance.clustered(
            2,
            p_local=[[2, 2, 2, 2]] * 4,
            p_cluster=[[3, 3]] * 4,
            p_global=[4] * 4,
        )

    def test_rho_values(self, tree_instance, memory_instance):
        # k = 3 levels: ρ = 1 + H_3 = 1 + 11/6.
        assert model2_rho(tree_instance) == 1 + harmonic(3)
        # k = 2 levels: the tighter 2 + 1/m.
        assert model2_rho(memory_instance) == 2 + Fraction(1, 2)

    def test_sigma_guarantees(self, tree_instance):
        sizes = [Fraction(1, 2)] * 4
        T = minimal_model2_T(tree_instance, sizes, 2)
        result = solve_model2(tree_instance, sizes, 2, T)
        assert result.sigma == 2 + harmonic(3)
        assert result.makespan_ratio <= result.sigma
        assert result.max_memory_ratio <= result.sigma
        assert validate_schedule(
            result.instance, result.assignment, result.schedule
        ).valid

    def test_semi_partitioned_sigma_3_plus_1_over_m(self, memory_instance):
        sizes = [Fraction(1, 4)] * 4
        T = minimal_model2_T(memory_instance, sizes, 2)
        result = solve_model2(memory_instance, sizes, 2, T)
        assert result.sigma == 3 + Fraction(1, 2)
        assert result.makespan_ratio <= result.sigma
        assert result.max_memory_ratio <= result.sigma

    def test_root_unbounded(self, tree_instance):
        sizes = [1] * 4
        root = frozenset(range(4))
        T = minimal_model2_T(tree_instance, sizes, Fraction(3, 2))
        result = solve_model2(tree_instance, sizes, Fraction(3, 2), T)
        assert root not in result.capacities

    def test_job_size_above_one_rejected(self, tree_instance):
        with pytest.raises(InvalidInstanceError):
            solve_model2(tree_instance, [2] * 4, 2, 10)

    def test_mu_at_most_one_rejected(self, tree_instance):
        with pytest.raises(InvalidInstanceError):
            solve_model2(tree_instance, [Fraction(1, 2)] * 4, 1, 10)

    def test_forest_rejected(self):
        fam = LaminarFamily([0, 1, 2, 3], [[0, 1], [2, 3], [0], [1], [2], [3]])
        inst = Instance(
            fam,
            {0: {frozenset({0}): 1, frozenset({1}): 1, frozenset({0, 1}): 1}},
            validate=False,
        )
        with pytest.raises(InvalidInstanceError):
            solve_model2(inst, [Fraction(1, 2)], 2, 5)

    def test_memory_pressure_forces_spreading(self):
        # Tight leaf capacities push jobs to bigger masks despite the cost.
        inst = Instance.clustered(
            2,
            p_local=[[1, 1, 1, 1]] * 4,
            p_cluster=[[2, 2]] * 4,
            p_global=[3] * 4,
        )
        sizes = [1, 1, 1, 1]
        mu = Fraction(3, 2)
        # Leaf capacity µ^0 = 1: one job per singleton; cluster µ^1 = 3/2.
        T = minimal_model2_T(inst, sizes, mu)
        result = solve_model2(inst, sizes, mu, T)
        assert result.max_memory_ratio <= result.sigma


class TestModel1Exact:
    def test_exact_respects_budgets_strictly(self, memory_instance):
        from repro.core.memory import solve_model1_exact

        space = [[1, 1]] * 4
        budgets = {0: 2, 1: 2}
        T_opt, assignment = solve_model1_exact(memory_instance, space, budgets)
        assert T_opt == 4  # two jobs per machine, locals of length 2
        for i in budgets:
            used = sum(space[j][i] for j, a in assignment.items() if i in a)
            assert used <= budgets[i]

    def test_exact_infeasible_budgets_raise(self, memory_instance):
        from repro.core.memory import solve_model1_exact
        from repro.exceptions import InfeasibleError

        space = [[3, 3]] * 4
        with pytest.raises(InfeasibleError):
            solve_model1_exact(memory_instance, space, {0: 2, 1: 2})

    def test_bicriteria_within_3x_of_exact(self):
        from repro.core.memory import minimal_model1_T, solve_model1, solve_model1_exact
        from repro.exceptions import InfeasibleError
        from repro.workloads import random_semi_partitioned, rng_from_seed

        rng = rng_from_seed(88)
        checked = 0
        for _ in range(4):
            inst = random_semi_partitioned(rng, n=4, m=2)
            space = [[int(rng.integers(1, 3)) for _ in range(2)] for _ in range(4)]
            budgets = {0: 4, 1: 4}
            try:
                T_opt, _a = solve_model1_exact(inst, space, budgets)
                T_lp = minimal_model1_T(inst, space, budgets)
                result = solve_model1(inst, space, budgets, T_lp)
            except InfeasibleError:
                continue
            checked += 1
            # The LP horizon lower-bounds the constrained optimum, and the
            # rounded makespan is within 3 of it — hence within 3 of T_opt.
            assert T_lp <= T_opt
            assert result.makespan <= 3 * T_opt
        assert checked > 0
