"""Unit tests for the laminar family data structure."""

import pytest

from repro import LaminarFamily
from repro.core.laminar import is_laminar
from repro.exceptions import InvalidFamilyError


class TestConstruction:
    def test_global_only(self):
        fam = LaminarFamily.global_only(3)
        assert fam.m == 3
        assert fam.sets == (frozenset({0, 1, 2}),)

    def test_singletons(self):
        fam = LaminarFamily.singletons(3)
        assert len(fam) == 3
        assert all(len(s) == 1 for s in fam)

    def test_semi_partitioned(self):
        fam = LaminarFamily.semi_partitioned(4)
        assert len(fam) == 5
        assert frozenset(range(4)) in fam
        assert fam.num_levels == 2

    def test_clustered(self):
        fam = LaminarFamily.clustered(6, 2)
        assert frozenset({0, 1}) in fam
        assert frozenset({4, 5}) in fam
        assert fam.num_levels == 3

    def test_clustered_degenerate_cluster_size_m(self):
        # clusters of size m collapse onto the root — no duplicates.
        fam = LaminarFamily.clustered(4, 4)
        assert len(fam) == 5  # root + 4 singletons

    def test_clustered_cluster_size_one(self):
        fam = LaminarFamily.clustered(4, 1)
        assert len(fam) == 5  # root + singletons (clusters == singletons)

    def test_clustered_indivisible_raises(self):
        with pytest.raises(InvalidFamilyError):
            LaminarFamily.clustered(5, 2)

    def test_from_nested(self):
        fam = LaminarFamily.from_nested([[0, 1], [2, 3]])
        assert frozenset({0, 1}) in fam
        assert frozenset({0, 1, 2, 3}) in fam
        assert fam.has_all_singletons

    def test_from_nested_deep(self):
        fam = LaminarFamily.from_nested([[[0, 1], [2, 3]], [4, 5]])
        assert frozenset({0, 1, 2, 3}) in fam
        assert fam.num_levels == 4

    def test_empty_family_raises(self):
        with pytest.raises(InvalidFamilyError):
            LaminarFamily([0, 1], [])

    def test_empty_machine_set_raises(self):
        with pytest.raises(InvalidFamilyError):
            LaminarFamily([], [[0]])

    def test_empty_set_raises(self):
        with pytest.raises(InvalidFamilyError):
            LaminarFamily([0, 1], [[]])

    def test_duplicate_set_raises(self):
        with pytest.raises(InvalidFamilyError):
            LaminarFamily([0, 1], [[0], [0]])

    def test_unknown_machine_raises(self):
        with pytest.raises(InvalidFamilyError):
            LaminarFamily([0, 1], [[0, 5]])

    def test_non_laminar_raises(self):
        with pytest.raises(InvalidFamilyError):
            LaminarFamily([0, 1, 2], [[0, 1], [1, 2]])

    def test_non_int_machine_raises(self):
        with pytest.raises(InvalidFamilyError):
            LaminarFamily(["a"], [["a"]])


class TestStructure:
    def test_parent_child(self):
        fam = LaminarFamily.clustered(4, 2)
        root = frozenset(range(4))
        cluster = frozenset({0, 1})
        assert fam.parent(cluster) == root
        assert fam.parent(root) is None
        assert cluster in fam.children(root)
        assert frozenset({0}) in fam.children(cluster)

    def test_levels_match_paper_definition(self):
        # level(β) = number of sets α with β ⊆ α (including itself).
        fam = LaminarFamily.clustered(4, 2)
        assert fam.level(frozenset(range(4))) == 1
        assert fam.level(frozenset({0, 1})) == 2
        assert fam.level(frozenset({0})) == 3
        assert fam.num_levels == 3

    def test_heights(self):
        fam = LaminarFamily.clustered(4, 2)
        assert fam.height(frozenset({0})) == 0
        assert fam.height(frozenset({0, 1})) == 1
        assert fam.height(frozenset(range(4))) == 2

    def test_ancestors_smallest_first(self):
        fam = LaminarFamily.clustered(4, 2)
        anc = fam.ancestors(frozenset({0}))
        assert anc == (frozenset({0, 1}), frozenset(range(4)))

    def test_descendants_and_subsets(self):
        fam = LaminarFamily.clustered(4, 2)
        root = frozenset(range(4))
        desc = set(fam.descendants(root))
        assert len(desc) == 6  # 2 clusters + 4 singletons
        assert set(fam.subsets_of(root)) == desc | {root}

    def test_chain(self):
        fam = LaminarFamily.clustered(4, 2)
        chain = fam.chain(2)
        assert chain == (frozenset({2}), frozenset({2, 3}), frozenset(range(4)))

    def test_child_containing(self):
        fam = LaminarFamily.clustered(4, 2)
        root = frozenset(range(4))
        assert fam.child_containing(root, 3) == frozenset({2, 3})
        assert fam.child_containing(frozenset({0, 1}), 0) == frozenset({0})
        assert fam.child_containing(frozenset({0}), 0) is None

    def test_child_containing_uncovered_machine(self):
        fam = LaminarFamily([0, 1, 2], [[0, 1, 2], [0, 1], [0], [1]])
        root = frozenset({0, 1, 2})
        assert fam.child_containing(root, 2) is None

    def test_minimal_containing(self):
        fam = LaminarFamily.clustered(4, 2)
        assert fam.minimal_containing([0]) == frozenset({0})
        assert fam.minimal_containing([0, 1]) == frozenset({0, 1})
        assert fam.minimal_containing([0, 2]) == frozenset(range(4))

    def test_minimal_containing_none(self):
        fam = LaminarFamily([0, 1, 2], [[0], [1], [2]])
        assert fam.minimal_containing([0, 1]) is None

    def test_roots_and_leaves(self):
        fam = LaminarFamily.clustered(4, 2)
        assert fam.roots == (frozenset(range(4)),)
        assert all(len(s) == 1 for s in fam.leaves)

    def test_forest_multiple_roots(self):
        fam = LaminarFamily([0, 1, 2, 3], [[0, 1], [2, 3], [0], [1], [2], [3]])
        assert len(fam.roots) == 2
        assert not fam.is_tree

    def test_uncovered(self):
        fam = LaminarFamily([0, 1, 2], [[0, 1, 2], [0, 1]])
        assert fam.uncovered(frozenset({0, 1, 2})) == frozenset({2})
        assert fam.uncovered(frozenset({0, 1})) == frozenset({0, 1})


class TestOrders:
    def test_bottom_up_subsets_first(self):
        fam = LaminarFamily.clustered(8, 2)
        seen = set()
        for alpha in fam.bottom_up():
            for beta in seen:
                assert not beta > alpha, "superset visited before subset"
            seen.add(alpha)

    def test_top_down_supersets_first(self):
        fam = LaminarFamily.clustered(8, 2)
        seen = set()
        for alpha in fam.top_down():
            for beta in seen:
                assert not beta < alpha, "subset visited before superset"
            seen.add(alpha)

    def test_orders_are_reverses(self):
        fam = LaminarFamily.semi_partitioned(5)
        assert tuple(reversed(fam.bottom_up())) == fam.top_down()


class TestDerived:
    def test_with_singletons_adds_missing(self):
        fam = LaminarFamily([0, 1, 2], [[0, 1, 2], [0, 1]])
        ext = fam.with_singletons()
        assert ext.has_all_singletons
        assert len(ext) == len(fam) + 3

    def test_with_singletons_idempotent_content(self):
        fam = LaminarFamily.semi_partitioned(3)
        assert set(fam.with_singletons().sets) == set(fam.sets)

    def test_is_uniform_tree(self):
        assert LaminarFamily.clustered(4, 2).is_uniform_tree
        assert LaminarFamily.semi_partitioned(3).is_uniform_tree
        lopsided = LaminarFamily([0, 1, 2], [[0, 1, 2], [0, 1], [0], [1], [2]])
        assert lopsided.is_tree
        assert not lopsided.is_uniform_tree

    def test_equality_and_hash(self):
        a = LaminarFamily.semi_partitioned(3)
        b = LaminarFamily(range(3), [[0, 1, 2], [0], [1], [2]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != LaminarFamily.singletons(3)

    def test_contains_accepts_iterables(self):
        fam = LaminarFamily.semi_partitioned(3)
        assert [0, 1, 2] in fam
        assert {0} in fam
        assert [0, 1] not in fam


class TestIsLaminarHelper:
    def test_laminar(self):
        assert is_laminar([[0, 1], [0], [2]])

    def test_not_laminar(self):
        assert not is_laminar([[0, 1], [1, 2]])

    def test_empty(self):
        assert is_laminar([])
