"""Tests for the LP substrate: model builder, exact simplex, scipy backend."""

from fractions import Fraction

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.exceptions import SolverError
from repro.lp import LinearProgram, solve_binary_ilp, solve_lp, solve_standard
from repro.lp.scipy_backend import solve_standard_float
from repro.lp.solve import is_feasible


class TestModelBuilder:
    def test_duplicate_variable_raises(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(SolverError):
            lp.add_variable("x")

    def test_unknown_sense_raises(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(SolverError):
            lp.add_constraint({"x": 1}, "<", 1)

    def test_zero_coefficients_dropped(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_variable("y")
        lp.add_constraint({"x": 1, "y": 0}, "<=", 1)
        assert lp.rows[0].coeffs == {0: 1}

    def test_nonzero_lower_bound_rejected_in_standard_form(self):
        lp = LinearProgram()
        lp.add_variable("x", lb=1)
        with pytest.raises(SolverError):
            lp.to_standard_rows()

    def test_upper_bounds_become_rows(self):
        lp = LinearProgram()
        lp.add_variable("x", ub=3)
        rows, senses, rhs, obj = lp.to_standard_rows()
        assert senses == ["<="]
        assert rhs == [3]

    def test_objective_coeffs_roundtrip(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.set_objective({"x": Fraction(2, 3)})
        assert lp.objective_coeffs == {"x": Fraction(2, 3)}


class TestExactSimplex:
    def test_known_optimum(self):
        # max x+y st x+2y<=4, 3x+y<=6 → min -(x+y); opt at (8/5, 6/5): -14/5.
        result = solve_standard(
            coeff_rows=[{0: Fraction(1), 1: Fraction(2)}, {0: Fraction(3), 1: Fraction(1)}],
            senses=["<=", "<="],
            rhs=[Fraction(4), Fraction(6)],
            objective=[Fraction(-1), Fraction(-1)],
        )
        assert result.status == "optimal"
        assert result.objective == Fraction(-14, 5)
        assert result.x == [Fraction(8, 5), Fraction(6, 5)]

    def test_equality_constraints(self):
        result = solve_standard(
            coeff_rows=[{0: Fraction(1), 1: Fraction(1)}],
            senses=["=="],
            rhs=[Fraction(5)],
            objective=[Fraction(1), Fraction(2)],
        )
        assert result.objective == 5  # all weight on x0

    def test_negative_rhs_normalized(self):
        # -x <= -2 means x >= 2.
        result = solve_standard(
            coeff_rows=[{0: Fraction(-1)}],
            senses=["<="],
            rhs=[Fraction(-2)],
            objective=[Fraction(1)],
        )
        assert result.objective == 2

    def test_infeasible(self):
        result = solve_standard(
            coeff_rows=[{0: Fraction(1)}, {0: Fraction(1)}],
            senses=["<=", ">="],
            rhs=[Fraction(1), Fraction(2)],
            objective=[Fraction(0)],
        )
        assert result.status == "infeasible"

    def test_unbounded(self):
        result = solve_standard(
            coeff_rows=[],
            senses=[],
            rhs=[],
            objective=[Fraction(-1)],
        )
        assert result.status == "unbounded"

    def test_degenerate_redundant_rows(self):
        # Duplicate equality rows leave an artificial basic at zero.
        result = solve_standard(
            coeff_rows=[{0: Fraction(1)}, {0: Fraction(1)}],
            senses=["==", "=="],
            rhs=[Fraction(3), Fraction(3)],
            objective=[Fraction(1)],
        )
        assert result.status == "optimal"
        assert result.x == [Fraction(3)]

    def test_basic_solution_support_bound(self):
        # A vertex has at most (#rows) nonzeros.
        rows = [{j: Fraction(1) for j in range(6)}, {0: Fraction(1), 3: Fraction(2)}]
        result = solve_standard(
            coeff_rows=rows,
            senses=["==", "<="],
            rhs=[Fraction(4), Fraction(3)],
            objective=[Fraction(0)] * 6,
        )
        assert result.status == "optimal"
        assert sum(1 for v in result.x if v != 0) <= 2


@st.composite
def random_lp(draw):
    n = draw(st.integers(1, 4))
    r = draw(st.integers(1, 4))
    rows = []
    senses = []
    rhs = []
    for _ in range(r):
        row = {
            j: Fraction(draw(st.integers(-4, 4)))
            for j in range(n)
            if draw(st.booleans())
        }
        rows.append(row)
        senses.append(draw(st.sampled_from(["<=", ">=", "=="])))
        rhs.append(Fraction(draw(st.integers(-6, 6))))
    objective = [Fraction(draw(st.integers(-3, 3))) for _ in range(n)]
    return rows, senses, rhs, objective


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(random_lp())
def test_exact_simplex_agrees_with_scipy(data):
    rows, senses, rhs, objective = data
    exact = solve_standard(rows, senses, rhs, objective)
    floaty = solve_standard_float(rows, senses, rhs, objective)
    assert exact.status == floaty.status
    if exact.status == "optimal":
        assert abs(float(exact.objective) - float(floaty.objective)) < 1e-6


class TestSolveLP:
    def test_backend_dispatch(self):
        lp = LinearProgram()
        lp.add_variable("x", ub=2)
        lp.set_objective({"x": -1})
        for backend in ("exact", "scipy", "auto"):
            solution = solve_lp(lp, backend=backend)
            assert solution.value("x") == 2

    def test_unknown_backend_raises(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(SolverError):
            solve_lp(lp, backend="gurobi")

    def test_is_feasible(self):
        lp = LinearProgram()
        lp.add_variable("x", ub=1)
        lp.add_constraint({"x": 1}, ">=", 2)
        assert not is_feasible(lp)


class TestBranchAndBound:
    def test_binary_knapsack(self):
        # min -(4a + 3b + 2c) st 2a+2b+c <= 3, binary → a + c = -6.
        lp = LinearProgram()
        for name, value in (("a", -4), ("b", -3), ("c", -2)):
            lp.add_variable(name, ub=1, integral=True)
        lp.add_constraint({"a": 2, "b": 2, "c": 1}, "<=", 3)
        lp.set_objective({"a": -4, "b": -3, "c": -2})
        result = solve_binary_ilp(lp)
        assert result.objective == -6
        assert result.values["a"] == 1 and result.values["c"] == 1

    def test_mixed_continuous_binary(self):
        lp = LinearProgram()
        lp.add_variable("x", ub=1, integral=True)
        lp.add_variable("y", ub=Fraction(5, 2))
        lp.add_constraint({"x": 2, "y": 1}, "<=", 3)
        lp.set_objective({"x": -3, "y": -1})
        result = solve_binary_ilp(lp)
        assert result.objective == -4  # x=1, y=1

    def test_infeasible(self):
        lp = LinearProgram()
        lp.add_variable("x", ub=1, integral=True)
        lp.add_constraint({"x": 1}, ">=", 2)
        assert solve_binary_ilp(lp).status == "infeasible"

    def test_bad_binary_bounds_raise(self):
        lp = LinearProgram()
        lp.add_variable("x", ub=2, integral=True)
        with pytest.raises(SolverError):
            solve_binary_ilp(lp)

    def test_lp_gap_instance(self):
        # The LP relaxation is fractional-friendly; the ILP optimum is -1.
        lp = LinearProgram()
        lp.add_variable("x", ub=1, integral=True)
        lp.add_variable("y", ub=1, integral=True)
        lp.add_constraint({"x": 1, "y": 1}, "<=", 1)
        lp.add_constraint({"x": -1, "y": 1}, "<=", 0)
        lp.set_objective({"x": -1, "y": -1})
        result = solve_binary_ilp(lp)
        assert result.objective == -1
        values = result.values
        assert values["x"] + values["y"] <= 1
