"""Tests for the certified hybrid backend and the fraction-free simplex."""

from fractions import Fraction

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.exceptions import SolverError
from repro.lp import (
    BACKENDS,
    LinearProgram,
    feasible_point,
    is_feasible,
    solve_lp,
    solve_standard,
    solve_standard_hybrid,
)
from repro.lp.simplex import _point_hints


def _knapsack_lp():
    lp = LinearProgram()
    lp.add_variable("x", ub=2)
    lp.add_variable("y", ub=3)
    lp.add_constraint({"x": 1, "y": 2}, "<=", 4)
    lp.set_objective({"x": -1, "y": -1})
    return lp


class TestHybridBackend:
    def test_registered(self):
        assert "hybrid" in BACKENDS

    def test_agrees_with_exact_on_optimum(self):
        lp = _knapsack_lp()
        exact = solve_lp(lp, backend="exact")
        hybrid = solve_lp(lp, backend="hybrid")
        assert hybrid.status == "optimal"
        assert hybrid.objective == exact.objective
        # Values are exact rationals, not rationalized floats.
        assert all(isinstance(v, Fraction) for v in hybrid.values.values())

    def test_infeasible_verdict_confirmed_exactly(self):
        lp = LinearProgram()
        lp.add_variable("x", ub=1)
        lp.add_constraint({"x": 1}, ">=", 2)
        assert solve_lp(lp, backend="hybrid").status == "infeasible"
        assert not is_feasible(lp, backend="hybrid")

    def test_unbounded(self):
        result = solve_standard_hybrid(
            coeff_rows=[], senses=[], rhs=[], objective=[Fraction(-1)]
        )
        assert result.status == "unbounded"

    def test_returns_basic_solution(self):
        # A vertex has at most (#rows) nonzeros — the property LST needs.
        rows = [{j: Fraction(1) for j in range(6)}, {0: Fraction(1), 3: Fraction(2)}]
        result = solve_standard_hybrid(
            coeff_rows=rows,
            senses=["==", "<="],
            rhs=[Fraction(4), Fraction(3)],
            objective=[Fraction(0)] * 6,
        )
        assert result.status == "optimal"
        assert sum(1 for v in result.x if v != 0) <= 2

    def test_fractional_vertex_exact(self):
        # Optimum at (8/5, 6/5): rationalization must recover it exactly.
        result = solve_standard_hybrid(
            coeff_rows=[
                {0: Fraction(1), 1: Fraction(2)},
                {0: Fraction(3), 1: Fraction(1)},
            ],
            senses=["<=", "<="],
            rhs=[Fraction(4), Fraction(6)],
            objective=[Fraction(-1), Fraction(-1)],
        )
        assert result.objective == Fraction(-14, 5)
        assert result.x == [Fraction(8, 5), Fraction(6, 5)]


class TestWarmStart:
    def test_warm_values_do_not_change_result(self):
        lp = _knapsack_lp()
        cold = solve_lp(lp, backend="exact")
        warm = solve_lp(lp, backend="exact", warm_values=cold.values)
        assert warm.objective == cold.objective
        assert warm.values == cold.values

    def test_bad_warm_values_are_harmless(self):
        lp = _knapsack_lp()
        nonsense = {"x": Fraction(10**6), "y": Fraction(1, 10**6)}
        warm = solve_lp(lp, backend="exact", warm_values=nonsense)
        assert warm.objective == solve_lp(lp, backend="exact").objective

    def test_warm_start_skips_pivots(self):
        # An equality program needs phase-1 work from a cold start; with the
        # optimal support pushed first it should need strictly fewer pivots.
        rows = [{j: Fraction(1) for j in range(8)}, {0: Fraction(1), 4: Fraction(1)}]
        senses = ["==", ">="]
        rhs = [Fraction(5), Fraction(1)]
        objective = [Fraction(j + 1) for j in range(8)]
        cold = solve_standard(rows, senses, rhs, objective)
        warm = solve_standard(
            rows, senses, rhs, objective,
            warm_hints=[j for j, v in enumerate(cold.x) if v > 0],
        )
        assert warm.objective == cold.objective
        assert warm.pivots <= cold.pivots

    def test_point_hints_order(self):
        hints = _point_hints([Fraction(0), Fraction(1, 2), Fraction(3), Fraction(0)])
        assert hints == [2, 1]


class TestCheckValues:
    def test_certifies_feasible_point(self):
        lp = _knapsack_lp()
        assert lp.check_values({"x": Fraction(2), "y": Fraction(1)}) == []

    def test_detects_row_violation(self):
        lp = _knapsack_lp()
        violations = lp.check_values({"x": Fraction(2), "y": Fraction(3)})
        assert violations and "violated" in violations[0]

    def test_detects_bound_violation(self):
        lp = _knapsack_lp()
        assert lp.check_values({"x": Fraction(-1)})
        assert lp.check_values({"y": Fraction(4)})

    def test_hairline_violation_caught(self):
        # A point off by 10^-12 — invisible to float tolerances, caught
        # exactly.  This is the scipy-propagation bug the re-check closes.
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_constraint({"x": 1}, "<=", 1)
        assert lp.check_values({"x": Fraction(1)}) == []
        assert lp.check_values({"x": 1 + Fraction(1, 10**12)})


class TestFeasiblePoint:
    def test_point_is_exactly_feasible(self):
        lp = _knapsack_lp()
        for backend in ("exact", "scipy", "hybrid"):
            point = feasible_point(lp, backend=backend)
            assert point is not None
            assert lp.check_values(point) == []

    def test_none_on_infeasible(self):
        lp = LinearProgram()
        lp.add_variable("x", ub=1)
        lp.add_constraint({"x": 1}, ">=", 2)
        for backend in ("exact", "scipy", "hybrid"):
            assert feasible_point(lp, backend=backend) is None

    def test_empty_row_infeasibility(self):
        # The builders encode "job has no options" as {} == 1.
        lp = LinearProgram()
        lp.add_variable("x", ub=1)
        lp.add_constraint({}, "==", 1)
        for backend in ("exact", "scipy", "hybrid"):
            assert not is_feasible(lp, backend=backend)


class TestPivotAccounting:
    def test_pivots_reported(self):
        result = solve_standard(
            coeff_rows=[{0: Fraction(1), 1: Fraction(2)}],
            senses=["<="],
            rhs=[Fraction(4)],
            objective=[Fraction(-1), Fraction(-1)],
        )
        assert result.status == "optimal"
        assert result.pivots >= 1

    def test_unknown_backend_still_raises(self):
        lp = _knapsack_lp()
        with pytest.raises(SolverError):
            solve_lp(lp, backend="cplex")


@st.composite
def random_lp(draw):
    n = draw(st.integers(1, 4))
    r = draw(st.integers(1, 4))
    rows = []
    senses = []
    rhs = []
    for _ in range(r):
        row = {
            j: Fraction(draw(st.integers(-4, 4)), draw(st.integers(1, 3)))
            for j in range(n)
            if draw(st.booleans())
        }
        rows.append(row)
        senses.append(draw(st.sampled_from(["<=", ">=", "=="])))
        rhs.append(Fraction(draw(st.integers(-6, 6)), draw(st.integers(1, 3))))
    objective = [Fraction(draw(st.integers(-3, 3))) for _ in range(n)]
    return rows, senses, rhs, objective


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(random_lp())
def test_hybrid_agrees_with_exact_exactly(data):
    """Status and optimum match to exact equality — the certification claim."""
    rows, senses, rhs, objective = data
    exact = solve_standard(rows, senses, rhs, objective)
    hybrid = solve_standard_hybrid(rows, senses, rhs, objective)
    assert exact.status == hybrid.status
    if exact.status == "optimal":
        assert exact.objective == hybrid.objective
