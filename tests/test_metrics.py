"""Unit tests for migration/preemption counting (Proposition III.2 semantics)."""

from fractions import Fraction

from repro import Schedule
from repro.schedule.metrics import (
    average_utilization,
    job_transitions,
    machine_utilization,
    summarize,
    total_migrations,
    total_preemptions_and_migrations,
)


def test_no_transitions_for_contiguous_run():
    s = Schedule([0], 5)
    s.add_segment(0, 0, 0, 5)
    t = job_transitions(s, 0)
    assert t.migrations == 0 and t.pure_preemptions == 0


def test_seamless_same_machine_pieces_are_merged():
    s = Schedule([0], 5)
    s.add_segment(0, 0, 0, 2)
    s.add_segment(0, 0, 2, 5)
    t = job_transitions(s, 0)
    assert t.total == 0


def test_gap_on_same_machine_is_pure_preemption():
    s = Schedule([0], 5)
    s.add_segment(0, 0, 0, 1)
    s.add_segment(0, 0, 3, 4)
    t = job_transitions(s, 0)
    assert t.migrations == 0 and t.pure_preemptions == 1


def test_seamless_handover_is_migration_only():
    s = Schedule([0, 1], 4)
    s.add_segment(0, 0, 0, 2)
    s.add_segment(1, 0, 2, 4)
    t = job_transitions(s, 0)
    assert t.migrations == 1 and t.pure_preemptions == 0
    assert t.total == 1


def test_gap_plus_machine_change_counts_once_as_migration():
    s = Schedule([0, 1], 6)
    s.add_segment(0, 0, 0, 2)
    s.add_segment(1, 0, 4, 6)
    t = job_transitions(s, 0)
    assert t.migrations == 1 and t.pure_preemptions == 0


def test_wrap_around_pattern():
    # The classic Algorithm 1 pattern: run at end of window, wrap to start.
    s = Schedule([0, 1], 4)
    s.add_segment(0, 7, 3, 4)
    s.add_segment(1, 7, 0, 1)
    # Job 7: piece on machine 1 at [0,1), then machine 0 at [3,4).
    t = job_transitions(s, 7)
    assert t.migrations == 1


def test_totals_across_jobs():
    s = Schedule([0, 1], 6)
    s.add_segment(0, 0, 0, 2)
    s.add_segment(1, 0, 2, 4)  # migration
    s.add_segment(1, 1, 0, 1)
    s.add_segment(1, 1, 4, 5)  # pure preemption
    assert total_migrations(s) == 1
    assert total_preemptions_and_migrations(s) == 2


def test_utilization():
    s = Schedule([0, 1], 4)
    s.add_segment(0, 0, 0, 4)
    s.add_segment(1, 1, 0, 2)
    u = machine_utilization(s)
    assert u[0] == 1 and u[1] == Fraction(1, 2)
    assert average_utilization(s) == Fraction(3, 4)


def test_utilization_zero_horizon():
    s = Schedule([0], 0)
    assert machine_utilization(s) == {0: 0}


def test_summarize():
    s = Schedule([0, 1], 4)
    s.add_segment(0, 0, 0, 2)
    s.add_segment(1, 0, 2, 4)
    summary = summarize(s)
    assert summary.makespan == 4
    assert summary.migrations == 1
    assert summary.segments == 2
    assert summary.avg_utilization == Fraction(1, 2)


def test_processing_order_vs_wall_clock_migration_accounting():
    """The E03 finding: wrap-around can inflate wall-clock migration counts.

    Job 3's processing line runs m0 → m1 and wraps past T on m1, so its tail
    piece [0, 1/2) executes *first* in wall-clock time.  Processing-order
    accounting (the paper's): 1 migration + 1 preemption.  Wall-clock: 2
    migrations.  The combined total (2 = 2m−2) agrees.
    """
    from fractions import Fraction
    from repro import Assignment, Instance, schedule_semi_partitioned
    from repro.schedule.metrics import (
        distinct_machine_migrations,
        total_migrations,
        total_migrations_processing_order,
    )

    inst = Instance.semi_partitioned(
        p_local=[[1, 1], [1, 1], [1, 1], [1, 2]],
        p_global=[1, 1, 1, 2],
    )
    root = frozenset({0, 1})
    a = Assignment({0: root, 1: frozenset({0}), 2: frozenset({1}), 3: root})
    T = Fraction(5, 2)
    s = schedule_semi_partitioned(inst, a, T)
    assert distinct_machine_migrations(s, 3) == 1
    assert total_migrations_processing_order(s) <= inst.m - 1
    assert total_migrations(s) == 2  # wall-clock sees the wrap as a migration
    assert total_preemptions_and_migrations(s) == 2  # == 2m − 2, order-free


def test_distinct_machine_migrations_single_machine():
    s = Schedule([0, 1], 5)
    s.add_segment(0, 0, 0, 1)
    s.add_segment(0, 0, 3, 4)
    from repro.schedule.metrics import distinct_machine_migrations

    assert distinct_machine_migrations(s, 0) == 0
    assert distinct_machine_migrations(s, 99) == 0  # absent job
