"""Tests for the observability substrate: spans, exporters, the sweep
stats hand-back, and the never-perturb-results invariant.

The load-bearing properties:

* :func:`repro.obs.span` is free when no tracer is installed (yields
  ``None``, allocates nothing) and builds a correctly parented tree when
  one is;
* counter deltas recorded while a span is open attach to it (and to its
  ancestors), mirroring nested ``collect_stats`` scopes;
* ``SolverStats.to_json``/``from_json`` and ``Span`` round-trip exactly,
  kernels dict included — the sweep worker→driver wire format;
* the lp.stats sink machinery survives re-entrant ``record`` calls from a
  sink and out-of-order scope unwinds under exceptions;
* **byte-identity**: traced runs produce bit-identical results, payload
  files, and counter totals to untraced runs — observability feeds
  nothing back into the computation;
* the Chrome-trace exporter emits structurally valid ``trace_event``
  payloads and the validator rejects malformed ones;
* worker span trees and per-task counters survive the 2-worker sweep
  round trip into the driver's tracer and the store index.
"""

from __future__ import annotations

import json
import os
import sqlite3
from fractions import Fraction

import pytest

from repro.cli import main as cli_main
from repro.core.programs import minimal_fractional_T
from repro.lp import stats as lp_stats
from repro.lp.stats import SolverStats, collect_stats, record
from repro.obs import (
    JsonlSpanSink,
    Span,
    Tracer,
    adopt_spans,
    chrome_trace,
    current_span,
    span,
    suspended,
    tracing,
    tracing_enabled,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.trace import reset as obs_reset
from repro.session.cache import SolveCache
from repro.workloads import example_ii1, random_hierarchical, rng_from_seed


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with no tracer, no spans, no sinks."""
    obs_reset()
    yield
    obs_reset()


class TestSpanBasics:
    def test_disabled_span_yields_none_and_collects_nothing(self):
        assert not tracing_enabled()
        with span("lp.solve", kernel="revised") as sp:
            assert sp is None
        assert current_span() is None

    def test_nesting_builds_parented_tree(self):
        with tracing() as tracer:
            with span("outer", depth=0) as outer:
                assert current_span() is outer
                with span("inner") as inner:
                    assert inner.parent_id == outer.span_id
                with span("inner2") as inner2:
                    assert inner2.parent_id == outer.span_id
            assert outer.parent_id is None
        names = [sp.name for sp in tracer.spans]
        # Children finish (and are collected) before their parent.
        assert names == ["inner", "inner2", "outer"]
        assert all(sp.end_ns >= sp.start_ns for sp in tracer.spans)
        assert tracer.spans[-1].attrs == {"depth": 0}

    def test_stats_attach_to_all_open_spans(self):
        with tracing() as tracer:
            with span("outer"):
                with span("inner"):
                    record(SolverStats(solves=1, pivots=7, kernels={"revised": 1}))
                record(SolverStats(pivots=2))
        inner, outer = tracer.spans
        assert (inner.stats.solves, inner.stats.pivots) == (1, 7)
        # The parent aggregates its child's delta plus its own.
        assert (outer.stats.solves, outer.stats.pivots) == (1, 9)
        assert outer.stats.kernels == {"revised": 1}

    def test_span_exception_teardown_closes_and_collects(self):
        with tracing() as tracer:
            with pytest.raises(RuntimeError):
                with span("doomed"):
                    raise RuntimeError("boom")
        assert [sp.name for sp in tracer.spans] == ["doomed"]
        assert current_span() is None

    def test_suspended_drops_spans_and_counter_attachment(self):
        with tracing() as tracer:
            with span("kept") as kept:
                with suspended():
                    assert not tracing_enabled()
                    with span("invisible") as sp:
                        assert sp is None
                    record(SolverStats(pivots=100))
                assert tracing_enabled()
                assert current_span() is kept
        assert [sp.name for sp in tracer.spans] == ["kept"]
        assert tracer.spans[0].stats.pivots == 0

    def test_uninstall_clears_stack_and_sink(self):
        with tracing():
            with span("left-open"):
                pass
        assert current_span() is None
        assert not lp_stats._sinks


class TestRoundTrips:
    def test_solver_stats_json_round_trip_exact(self):
        stats = SolverStats(
            solves=3, pivots=41, phase1_pivots=11, refactorizations=2,
            warm_start_attempts=3, warm_start_hits=2, point_reuses=1,
            farkas_reuses=4, cache_hits=5, cache_misses=6,
            kernels={"revised": 2, "tableau": 1},
        )
        payload = stats.to_json()
        assert payload["kernels"] == {"revised": 2, "tableau": 1}
        # The copy is deep enough: mutating the payload leaves stats alone.
        payload["kernels"]["revised"] = 99
        assert stats.kernels["revised"] == 2
        rebuilt = SolverStats.from_json(stats.to_json())
        assert rebuilt == stats
        # JSON wire trip (what actually crosses the process boundary).
        assert SolverStats.from_json(json.loads(json.dumps(stats.to_json()))) == stats

    def test_solver_stats_from_json_tolerates_missing_and_unknown(self):
        rebuilt = SolverStats.from_json({"solves": 2, "not_a_counter": 9})
        assert rebuilt.solves == 2 and rebuilt.pivots == 0
        assert rebuilt.kernels == {}

    def test_span_json_round_trip(self):
        sp = Span(
            name="lp.solve", span_id=7, parent_id=3,
            start_ns=1_000, end_ns=5_000,
            attrs={"kernel": "revised", "T": str(Fraction(7, 2))},
            stats=SolverStats(solves=1, kernels={"revised": 1}),
            pid=1234,
        )
        rebuilt = Span.from_json(json.loads(json.dumps(sp.to_json())))
        assert rebuilt == sp
        # Empty attrs/stats are omitted from the payload entirely.
        bare = Span(name="x", span_id=1, parent_id=None, start_ns=0, end_ns=1)
        payload = bare.to_json()
        assert "attrs" not in payload and "stats" not in payload
        assert Span.from_json(payload) == bare

    def test_adopt_remaps_ids_and_reparents_roots(self):
        foreign = [
            Span(name="root", span_id=1, parent_id=None, start_ns=0, end_ns=9),
            Span(name="child", span_id=2, parent_id=1, start_ns=1, end_ns=8),
            Span(name="orphan", span_id=9, parent_id=77, start_ns=2, end_ns=3),
        ]
        tracer = Tracer()
        anchor = Span(name="anchor", span_id=tracer._allocate_id(),
                      parent_id=None, start_ns=0, end_ns=10)
        adopted = tracer.adopt([s.to_json() for s in foreign], parent=anchor)
        root, child, orphan = adopted
        assert root.parent_id == anchor.span_id
        assert child.parent_id == root.span_id
        # An unknown foreign parent re-parents under the anchor too.
        assert orphan.parent_id == anchor.span_id
        assert len({s.span_id for s in adopted} | {anchor.span_id}) == 4

    def test_adopt_spans_helper_is_noop_when_disabled(self):
        assert adopt_spans([{"name": "x", "span_id": 1, "parent_id": None,
                             "start_ns": 0}]) == []


class TestSinkHardening:
    def test_reentrant_record_from_sink_updates_scopes_not_sinks(self):
        calls = []

        def sink(stats):
            calls.append(stats.pivots)
            # A sink that records (e.g. tracing code paths that themselves
            # count) must not recurse into the sink fan-out.
            record(SolverStats(cache_hits=1))

        lp_stats.add_sink(sink)
        try:
            with collect_stats() as scope:
                record(SolverStats(pivots=5))
            assert calls == [5]
            # The re-entrant record still reached the scope.
            assert scope.pivots == 5 and scope.cache_hits == 1
        finally:
            lp_stats.remove_sink(sink)

    def test_sink_opening_and_closing_scopes_mid_record_is_safe(self):
        def sink(stats):
            with collect_stats():
                pass

        lp_stats.add_sink(sink)
        try:
            with collect_stats() as scope:
                record(SolverStats(solves=1))
            assert scope.solves == 1
        finally:
            lp_stats.remove_sink(sink)

    def test_nested_scopes_unwound_out_of_order_under_exceptions(self):
        """Regression: generator-held scopes torn down in the 'wrong' order
        (inner exit after outer exit) must each remove exactly themselves."""

        def scoped_counts():
            with collect_stats() as inner:
                yield inner

        outer_cm = collect_stats()
        outer = outer_cm.__enter__()
        gen = scoped_counts()
        inner = next(gen)
        record(SolverStats(pivots=3))
        # Outer exits first — inner is still registered at that moment.
        try:
            raise RuntimeError("unwind")
        except RuntimeError:
            outer_cm.__exit__(*__import__("sys").exc_info())
        gen.close()  # inner exits second
        assert outer.pivots == 3 and inner.pivots == 3
        assert not lp_stats._scopes  # nothing leaked
        # Recording after full teardown aggregates nowhere and is harmless.
        record(SolverStats(pivots=1))
        assert outer.pivots == 3

    def test_remove_sink_is_identity_based_and_tolerates_absent(self):
        def sink_a(stats):
            pass

        def sink_b(stats):
            pass

        lp_stats.add_sink(sink_a)
        lp_stats.add_sink(sink_b)
        lp_stats.remove_sink(sink_a)
        assert lp_stats._sinks == [sink_b]
        lp_stats.remove_sink(sink_a)  # absent: no-op
        lp_stats.remove_sink(sink_b)
        assert not lp_stats._sinks


class TestByteIdentity:
    """Observability must never perturb results — the tentpole invariant."""

    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_traced_equals_untraced_minimal_fractional_T(self, seed):
        inst = random_hierarchical(rng_from_seed(seed), n=8, m=3)
        with collect_stats() as cold:
            t_cold = minimal_fractional_T(inst)
        with tracing() as tracer:
            with collect_stats() as traced:
                t_traced = minimal_fractional_T(inst)
        assert t_traced == t_cold
        assert traced == cold  # identical counter totals, kernels included
        assert any(sp.name == "lp.solve" for sp in tracer.spans)
        root = [sp for sp in tracer.spans
                if sp.name == "search.minimal_fractional_T"]
        assert len(root) == 1
        # The search root aggregates exactly the scope's solve counters.
        assert root[0].stats.solves == traced.solves
        assert root[0].stats.pivots == traced.pivots

    def test_traced_sweep_payloads_byte_identical(self, tmp_path, capsys):
        params = [
            "sweep", "e01", "e02", "--jobs", "2",
        ]
        plain_store = str(tmp_path / "plain")
        traced_store = str(tmp_path / "traced")
        trace_file = str(tmp_path / "sweep.trace.json")
        assert cli_main(params + ["--store", plain_store]) == 0
        assert cli_main(
            params + ["--store", traced_store, "--trace", trace_file]
        ) == 0
        for bucket in ("e01", "e02"):
            plain = open(
                os.path.join(plain_store, "payloads", f"{bucket}.jsonl"), "rb"
            ).read()
            traced = open(
                os.path.join(traced_store, "payloads", f"{bucket}.jsonl"), "rb"
            ).read()
            assert plain == traced and plain
        # The traced run's store carries per-task counters in the index…
        with SolveCache(traced_store) as cache:
            totals = cache.stats_totals()
        assert totals["e01"].solves > 0 and totals["e01"].pivots > 0
        # …and the emitted Chrome trace is valid and contains the merged
        # worker span trees.
        payload = json.loads(open(trace_file).read())
        assert validate_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"repro.sweep", "sweep.task", "lp.solve"} <= names
        capsys.readouterr()

    def test_report_profile_renders_fleet_totals(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert cli_main(["sweep", "e01", "--jobs", "2", "--store", store]) == 0
        capsys.readouterr()
        assert cli_main(["report", store, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "per-experiment solver counters" in out
        assert "fleet-wide solver profile" in out
        assert "solves            0" not in out

    def test_store_stats_command(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert cli_main(["sweep", "e01", "--store", store]) == 0
        capsys.readouterr()
        assert cli_main(["store", "stats", store]) == 0
        out = capsys.readouterr().out
        assert "bucket" in out and "e01" in out
        assert "fleet-wide solver profile" in out
        assert cli_main(["store", "stats", str(tmp_path / "absent")]) == 2
        capsys.readouterr()


class TestExport:
    def _sample_spans(self):
        with tracing() as tracer:
            with span("session.solve", backend="hybrid"):
                with span("lp.solve", kernel="revised"):
                    record(SolverStats(solves=1, pivots=3,
                                       kernels={"revised": 1}))
        return tracer.spans

    def test_chrome_trace_structure(self):
        spans = self._sample_spans()
        payload = chrome_trace(spans, label="unit")
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"] == {"label": "unit"}
        events = payload["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(metas) == 1 and metas[0]["args"]["name"].startswith("repro pid")
        assert len(xs) == 2
        by_name = {e["name"]: e for e in xs}
        lp = by_name["lp.solve"]
        assert lp["args"]["kernel"] == "revised"
        assert lp["args"]["pivots"] == 3
        assert lp["args"]["kernels"] == "revised×1"
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in xs)
        # The child lies within the parent on the same track.
        parent = by_name["session.solve"]
        assert parent["ts"] <= lp["ts"]
        assert lp["ts"] + lp["dur"] <= parent["ts"] + parent["dur"] + 1e-6

    def test_validator_rejects_malformed(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        bad_events = {
            "traceEvents": [
                {"name": "", "ph": "X", "pid": 1, "tid": 1, "ts": -1, "dur": 2},
                {"name": "ok", "ph": "Z", "pid": "x", "tid": 1},
                "not-an-object",
            ]
        }
        problems = validate_chrome_trace(bad_events)
        assert len(problems) >= 4

    def test_write_chrome_trace_and_jsonl(self, tmp_path):
        spans = self._sample_spans()
        chrome_path = str(tmp_path / "trace.json")
        write_chrome_trace(chrome_path, spans)
        assert validate_chrome_trace(json.load(open(chrome_path))) == []
        jsonl_path = str(tmp_path / "spans.jsonl")
        write_spans_jsonl(jsonl_path, spans)
        lines = open(jsonl_path).read().splitlines()
        assert [Span.from_json(json.loads(l)) for l in lines] == spans

    def test_jsonl_sink_streams_per_span(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        with JsonlSpanSink(path) as sink:
            with tracing(Tracer(sink=sink)):
                with span("a"):
                    pass
                # The first span is on disk before the run ends.
                assert len(open(path).read().splitlines()) == 1
                with span("b"):
                    pass
        rebuilt = [
            Span.from_json(json.loads(l))
            for l in open(path).read().splitlines()
        ]
        assert [sp.name for sp in rebuilt] == ["a", "b"]


class TestStoreStatsColumn:
    def test_pre_stats_store_migrates_in_place(self, tmp_path):
        root = str(tmp_path / "old-store")
        os.makedirs(os.path.join(root, "payloads"))
        db = sqlite3.connect(os.path.join(root, "index.sqlite"))
        db.executescript(
            """
            CREATE TABLE tasks (
                key TEXT PRIMARY KEY, experiment TEXT NOT NULL,
                params_json TEXT NOT NULL, seed INTEGER,
                fingerprint TEXT NOT NULL, status TEXT NOT NULL,
                elapsed_s REAL,
                created_at TEXT NOT NULL DEFAULT (datetime('now')),
                payload_path TEXT
            );
            """
        )
        db.execute(
            "INSERT INTO tasks (key, experiment, params_json, fingerprint,"
            " status, elapsed_s) VALUES ('k1', 'e01', '{}', 'fp', 'done', 0.5)"
        )
        db.commit()
        db.close()
        with SolveCache(root) as cache:
            columns = {
                row[1] for row in cache._db.execute("PRAGMA table_info(tasks)")
            }
            assert {"payload_offset", "stats_json"} <= columns
            # Old rows carry no counters and aggregate to nothing.
            assert cache.stats_totals() == {}
            summary = cache.bucket_summary()
            assert summary["e01"]["entries"] == 1
            assert summary["e01"]["with_stats"] == 0
            # New entries record counters alongside.
            cache.put(
                "k2", "e01", {"key": "k2", "x": 1}, fingerprint="fp",
                stats=SolverStats(solves=2, pivots=9).to_json(),
            )
            totals = cache.stats_totals()
            assert totals["e01"].solves == 2 and totals["e01"].pivots == 9
            assert cache.bucket_summary()["e01"]["with_stats"] == 1

    def test_stats_never_reach_payload_bytes(self, tmp_path):
        a = SolveCache(str(tmp_path / "a"))
        b = SolveCache(str(tmp_path / "b"))
        rec = {"key": "k", "result": {"T": "3/2"}}
        a.put("k", "bucket", rec, fingerprint="fp")
        b.put("k", "bucket", rec, fingerprint="fp",
              stats=SolverStats(solves=5).to_json())
        pa = open(os.path.join(a.root, "payloads", "bucket.jsonl"), "rb").read()
        pb = open(os.path.join(b.root, "payloads", "bucket.jsonl"), "rb").read()
        assert pa == pb
        a.close()
        b.close()


class TestInstrumentationShape:
    def test_e01_style_session_run_emits_expected_span_kinds(self, tmp_path):
        from repro.session import Session

        inst = example_ii1()
        with tracing() as tracer:
            with Session(cache=str(tmp_path / "cache")) as session:
                session.minimal_fractional_T(inst)
                session.minimal_fractional_T(inst)  # warm: cache hit
        names = [sp.name for sp in tracer.spans]
        assert names.count("session.minimal_fractional_T") == 2
        assert "search.minimal_fractional_T" in names
        assert "search.probe" in names and "lp.solve" in names
        sessions = [sp for sp in tracer.spans
                    if sp.name == "session.minimal_fractional_T"]
        assert [sp.attrs["cache"] for sp in sessions] == ["miss", "hit"]
        hit = sessions[1]
        assert hit.stats.cache_hits == 1 and hit.stats.solves == 0

    def test_admission_spans(self):
        from repro.schedule.arrivals import PeriodicArrivals
        from repro.schedule.schedule import Schedule
        from repro.simulation.admission import admit_batch

        template = Schedule(range(2), Fraction(4))
        template.add_segment(0, 0, Fraction(0), Fraction(2))
        template.add_segment(1, 1, Fraction(1), Fraction(3))
        model = PeriodicArrivals(n_jobs=2, period=Fraction(4))
        streams = [
            model.arrivals_until(Fraction(8)),
            model.arrivals_until(Fraction(12)),
        ]
        with tracing() as tracer:
            admit_batch(template, streams, windows=3)
        names = [sp.name for sp in tracer.spans]
        assert names.count("sim.admit") == 2
        assert names.count("sim.admit_batch") == 1
        admits = [sp for sp in tracer.spans if sp.name == "sim.admit"]
        assert all(sp.attrs["admitted"] > 0 for sp in admits)
        batch = next(sp for sp in tracer.spans if sp.name == "sim.admit_batch")
        assert all(sp.parent_id == batch.span_id for sp in admits)

    def test_e14_timed_region_stays_trace_off(self):
        from repro.experiments.e14_scaling import run as e14_run

        with tracing() as tracer:
            e14_run(shapes=((4, 2),), backends=("exact",))
        # The session/search/lp spans of the timed solves are suppressed;
        # only spans opened outside suspended() may appear.
        assert not any(
            sp.name.startswith(("lp.", "search.", "session."))
            for sp in tracer.spans
        )
