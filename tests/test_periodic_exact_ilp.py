"""Tests for the periodic unrolling and the ILP cross-check solver."""

from fractions import Fraction

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import (
    Assignment,
    Instance,
    schedule_semi_partitioned,
    solve_exact,
    validate_schedule,
)
from repro.core.exact_ilp import ip3_feasible_integral, solve_exact_ilp
from repro.exceptions import InvalidScheduleError
from repro.schedule.metrics import total_migrations, total_migrations_processing_order
from repro.schedule.periodic import steady_state_migrations_per_period, unroll
from repro.workloads import (
    example_ii1,
    random_feasible_pair,
    random_hierarchical,
    random_semi_partitioned,
    rng_from_seed,
)


class TestUnroll:
    def test_two_periods_doubles_everything_without_relabel(
        self, instance_ii1, assignment_ii1
    ):
        s = schedule_semi_partitioned(instance_ii1, assignment_ii1, 2)
        u = unroll(s, 2, relabel=False)
        assert u.T == 4
        for j in range(3):
            assert u.work_of(j) == 2 * s.work_of(j)

    def test_relabel_gives_each_instance_full_work(
        self, instance_ii1, assignment_ii1
    ):
        s = schedule_semi_partitioned(instance_ii1, assignment_ii1, 2)
        periods = 3
        u = unroll(s, periods, relabel=True)
        stride = max(s.jobs()) + 1
        for q in range(periods):
            for j in range(3):
                assert u.work_of(j + q * stride) == s.work_of(j)

    def test_relabel_boundary_bookkeeping_with_wrap(self):
        # A schedule with a genuine wrap: interior instances get full work,
        # the warm-up slot carries period 0's wrapped piece, the last
        # instance is truncated by exactly that piece's length.
        inst = Instance.semi_partitioned(
            p_local=[[1, 1], [1, 1], [1, 1], [1, 2]],
            p_global=[1, 1, 1, 2],
        )
        root = frozenset({0, 1})
        a = Assignment({0: root, 1: frozenset({0}), 2: frozenset({1}), 3: root})
        s = schedule_semi_partitioned(inst, a, Fraction(5, 2))
        periods = 4
        stride = max(s.jobs()) + 1
        u = unroll(s, periods, relabel=True)
        wrapped_len = Fraction(1, 2)  # job 3's piece at [0, 1/2)
        for q in range(periods - 1):
            assert u.work_of(3 + q * stride) == 2
        assert u.work_of(3 + (periods - 1) * stride) == 2 - wrapped_len
        assert u.work_of(3 + periods * stride) == wrapped_len
        # Total work conserved.
        total = sum(
            (u.machine_load(i) for i in u.machines), Fraction(0)
        )
        assert total == periods * sum(
            (s.machine_load(i) for i in s.machines), Fraction(0)
        )

    def test_single_period_is_copy(self, instance_ii1, assignment_ii1):
        s = schedule_semi_partitioned(instance_ii1, assignment_ii1, 2)
        u = unroll(s, 1)
        assert u.T == s.T
        assert u.total_segments() == s.total_segments()

    def test_invalid_periods(self, instance_ii1, assignment_ii1):
        s = schedule_semi_partitioned(instance_ii1, assignment_ii1, 2)
        with pytest.raises(InvalidScheduleError):
            unroll(s, 0)

    def test_zero_period_rejected(self):
        from repro import Schedule

        with pytest.raises(InvalidScheduleError):
            unroll(Schedule([0], 0), 2)

    def test_machine_exclusivity_preserved(self):
        rng = rng_from_seed(8)
        inst = random_semi_partitioned(rng, n=8, m=3)
        assignment, T = random_feasible_pair(rng, inst)
        s = schedule_semi_partitioned(inst, assignment, T)
        u = unroll(s, 3)  # add_segment would raise on any overlap
        assert u.T == 3 * T

    def test_steady_state_resolves_e03_accounting(self):
        """The E03 finding closes under the cyclic/instance interpretation.

        The minimal wall-clock violator (2 observed migrations on m=2, vs
        the paper's bound 1) has exactly 1 migration per interior instance:
        the wrap is a seamless same-machine continuation across periods.
        """
        from repro.schedule.periodic import interior_instance_migrations

        inst = Instance.semi_partitioned(
            p_local=[[1, 1], [1, 1], [1, 1], [1, 2]],
            p_global=[1, 1, 1, 2],
        )
        root = frozenset({0, 1})
        a = Assignment({0: root, 1: frozenset({0}), 2: frozenset({1}), 3: root})
        s = schedule_semi_partitioned(inst, a, Fraction(5, 2))
        assert total_migrations(s) == 2  # one-shot wall clock exceeds m−1
        assert interior_instance_migrations(s, job=3, periods=5) == 1

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10**6))
    def test_interior_instances_match_processing_order(self, seed):
        """Per interior instance, wall-clock == processing-order counts."""
        from repro.schedule.metrics import distinct_machine_migrations
        from repro.schedule.periodic import interior_instance_migrations

        rng = rng_from_seed(seed)
        inst = random_semi_partitioned(rng, n=int(rng.integers(2, 7)), m=int(rng.integers(2, 5)))
        assignment, T = random_feasible_pair(rng, inst)
        if T == 0:
            return
        s = schedule_semi_partitioned(inst, assignment, T)
        for job in s.jobs():
            expected = distinct_machine_migrations(s, job)
            assert interior_instance_migrations(s, job, periods=5) == expected

    def test_steady_state_average_bounded(self):
        inst = Instance.semi_partitioned(
            p_local=[[1, 1], [1, 1], [1, 1], [1, 2]],
            p_global=[1, 1, 1, 2],
        )
        root = frozenset({0, 1})
        a = Assignment({0: root, 1: frozenset({0}), 2: frozenset({1}), 3: root})
        s = schedule_semi_partitioned(inst, a, Fraction(5, 2))
        k = 8
        per_period = steady_state_migrations_per_period(s, periods=k)
        line_order = total_migrations_processing_order(s)
        # Boundary effects amortize away: ≤ line-order + O(m/k).
        assert per_period <= line_order + Fraction(2 * inst.m, k)


class TestExactILP:
    def test_example_ii1(self, instance_ii1):
        result = solve_exact_ilp(instance_ii1)
        assert result.optimum == 2

    def test_feasibility_primitive(self, instance_ii1):
        assert ip3_feasible_integral(instance_ii1, 2) is not None
        assert ip3_feasible_integral(instance_ii1, 1) is None

    def test_load_dominated_optimum(self):
        inst = Instance.identical(2, [3, 3, 3])
        result = solve_exact_ilp(inst)
        assert result.optimum == Fraction(9, 2)

    def test_agrees_with_dfs_solver_random(self):
        rng = rng_from_seed(55)
        for _ in range(8):
            inst = random_hierarchical(
                rng, n=int(rng.integers(2, 5)), m=int(rng.integers(2, 4))
            )
            dfs = solve_exact(inst)
            ilp = solve_exact_ilp(inst)
            assert dfs.optimum == ilp.optimum, inst

    def test_returned_assignment_schedulable(self, instance_ii1):
        from repro import schedule_hierarchical

        result = solve_exact_ilp(instance_ii1)
        s = schedule_hierarchical(instance_ii1, result.assignment, result.optimum)
        assert validate_schedule(instance_ii1, result.assignment, s).valid
