"""Tests for the (IP-3) program builders and Lemma V.1's push-down."""

from fractions import Fraction

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import (
    FractionalAssignment,
    Instance,
    LaminarFamily,
    minimal_fractional_T,
    solve_exact,
    verify_lp,
)
from repro.core.programs import admissible_pairs, build_ip3, feasible_lp_solution, lp_feasible
from repro.core.pushdown import push_down, push_down_once
from repro.exceptions import InfeasibleError, RoundingError
from repro.workloads import example_ii1, random_hierarchical, rng_from_seed


class TestAdmissiblePairs:
    def test_pruning(self, instance_ii1):
        pairs = admissible_pairs(instance_ii1, 1)
        assert (frozenset({0}), 0) in pairs
        assert (frozenset({0, 1}), 2) not in pairs  # p = 2 > 1
        pairs2 = admissible_pairs(instance_ii1, 2)
        assert (frozenset({0, 1}), 2) in pairs2

    def test_inf_never_admissible(self, instance_ii1):
        pairs = admissible_pairs(instance_ii1, 10**9)
        assert (frozenset({1}), 0) not in pairs


class TestLPFeasibility:
    def test_example_ii1_feasible_exactly_at_2(self, instance_ii1):
        assert not lp_feasible(instance_ii1, 1)
        assert lp_feasible(instance_ii1, 2)

    def test_feasible_solution_satisfies_lp(self, instance_ii1):
        x = feasible_lp_solution(instance_ii1, 2)
        assert x is not None
        assert verify_lp(instance_ii1, x, 2).feasible

    def test_infeasible_returns_none(self, instance_ii1):
        assert feasible_lp_solution(instance_ii1, 1) is None

    def test_scipy_backend_agrees(self, instance_ii1):
        assert lp_feasible(instance_ii1, 2, backend="scipy")
        assert not lp_feasible(instance_ii1, 1, backend="scipy")


class TestMinimalFractionalT:
    def test_example_ii1(self, instance_ii1):
        assert minimal_fractional_T(instance_ii1) == 2

    def test_lower_bounds_exact_optimum(self):
        rng = rng_from_seed(11)
        for _ in range(6):
            inst = random_hierarchical(rng, n=int(rng.integers(2, 6)), m=int(rng.integers(2, 5)))
            T_star = minimal_fractional_T(inst)
            opt = solve_exact(inst).optimum
            assert T_star <= opt

    def test_fractional_optimum_between_breakpoints(self):
        # 3 identical jobs of length 3 on 2 machines: T* = 9/2, not a p value.
        inst = Instance.identical(2, [3, 3, 3])
        assert minimal_fractional_T(inst) == Fraction(9, 2)

    def test_single_job(self):
        inst = Instance.identical(3, [7])
        assert minimal_fractional_T(inst) == 7

    def test_scipy_backend_agrees_on_examples(self, instance_ii1):
        assert minimal_fractional_T(instance_ii1, backend="scipy") == 2

    def test_unrelated_equals_collapse_bound(self):
        # For a singleton-complete family, T* equals the minimal feasible T
        # of the unrelated collapse LP (the Section V reduction, both ways).
        rng = rng_from_seed(5)
        inst = random_hierarchical(rng, n=4, m=3)
        from repro.baselines import minimal_unrelated_T

        ext = inst.with_singletons()
        p = {
            j: {i: ext.p(j, frozenset([i])) for i in range(ext.m)}
            for j in range(ext.n)
        }
        assert minimal_fractional_T(ext) == minimal_unrelated_T(p)


class TestBuildIP3:
    def test_variable_count_matches_pruning(self, instance_ii1):
        lp = build_ip3(instance_ii1, 2)
        assert lp.num_variables == len(admissible_pairs(instance_ii1, 2))

    def test_job_without_options_gets_unsatisfiable_row(self, instance_ii1):
        lp = build_ip3(instance_ii1, Fraction(1, 2))
        from repro.lp import solve_lp

        assert solve_lp(lp).status == "infeasible"


class TestPushDownOnce:
    def test_example_ii1_root(self, instance_ii1):
        root = frozenset({0, 1})
        x = FractionalAssignment(
            {(frozenset({0}), 0): 1, (frozenset({1}), 1): 1, (root, 2): 1}
        )
        pushed = push_down_once(instance_ii1, x, 2, root)
        assert pushed.value(root, 2) == 0
        assert pushed.value(frozenset({0}), 2) + pushed.value(frozenset({1}), 2) == 1
        assert verify_lp(instance_ii1, pushed, 2).feasible

    def test_proportional_to_slack(self, instance_ii1):
        root = frozenset({0, 1})
        x = FractionalAssignment(
            {(frozenset({0}), 0): 1, (frozenset({1}), 1): 1, (root, 2): 1}
        )
        # At T = 3: slack({0}) = slack({1}) = 2; equal split.
        pushed = push_down_once(instance_ii1, x, 3, root)
        assert pushed.value(frozenset({0}), 2) == Fraction(1, 2)
        assert pushed.value(frozenset({1}), 2) == Fraction(1, 2)

    def test_untouched_sets_preserved(self, small_hierarchical):
        root = frozenset(range(4))
        cluster = frozenset({0, 1})
        x = FractionalAssignment(
            {
                (root, 0): 1,
                (cluster, 1): 1,
                (frozenset({2}), 2): 1,
                (frozenset({3}), 3): 1,
                (frozenset({0}), 4): 1,
            }
        )
        T = minimal_fractional_T(small_hierarchical)
        big_T = T + 10
        pushed = push_down_once(small_hierarchical, x, big_T, root)
        assert pushed.value(cluster, 1) >= 1  # x on cluster only gains mass
        assert pushed.value(frozenset({2}), 2) == 1

    def test_singleton_target_raises(self, instance_ii1):
        x = FractionalAssignment({(frozenset({0}), 0): 1})
        with pytest.raises(RoundingError):
            push_down_once(instance_ii1, x, 5, frozenset({0}))

    def test_uncovered_children_raise(self):
        fam = LaminarFamily([0, 1, 2], [[0, 1, 2], [0, 1]])
        inst = Instance(
            fam, {0: {frozenset({0, 1}): 1, frozenset({0, 1, 2}): 1}}
        )
        x = FractionalAssignment({(frozenset({0, 1, 2}), 0): 1})
        with pytest.raises(RoundingError):
            push_down_once(inst, x, 3, frozenset({0, 1, 2}))

    def test_infeasible_input_detected(self, instance_ii1):
        root = frozenset({0, 1})
        # At T = 1 the local jobs exhaust both child slacks, yet the root
        # still carries job 2 with p_root = 2 > 0 — inequality (5) fails,
        # which only happens for (4b)-infeasible inputs.
        x = FractionalAssignment(
            {
                (frozenset({0}), 0): 1,
                (frozenset({1}), 1): 1,
                (root, 2): 1,
            }
        )
        with pytest.raises(RoundingError):
            push_down_once(instance_ii1, x, 1, root)

    def test_negative_child_slack_detected(self):
        inst = Instance.semi_partitioned(
            p_local=[[2, 2], [2, 2], [2, 2]], p_global=[2, 2, 2]
        )
        root = frozenset({0, 1})
        # Machine 0 overloaded beyond T = 3: slack({0}) = 3 − 4 < 0.
        x = FractionalAssignment(
            {
                (frozenset({0}), 0): 1,
                (frozenset({0}), 1): 1,
                (root, 2): 1,
            }
        )
        with pytest.raises(RoundingError):
            push_down_once(inst, x, 3, root)


class TestPushDownFull:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10**6))
    def test_lemma_v1_preserves_feasibility_and_lands_on_singletons(self, seed):
        rng = rng_from_seed(seed)
        inst = random_hierarchical(
            rng, n=int(rng.integers(2, 6)), m=int(rng.integers(2, 5))
        )
        ext = inst.with_singletons()
        T = minimal_fractional_T(ext)
        x = feasible_lp_solution(ext, T)
        assert x is not None
        pushed = push_down(ext, x, T)
        assert pushed.supported_on_singletons()
        report = verify_lp(ext, pushed, T)
        assert report.feasible, report.violations[:3]

    def test_job_totals_preserved(self, instance_ii1):
        T = 2
        x = feasible_lp_solution(instance_ii1, T)
        pushed = push_down(instance_ii1, x, T)
        for j in range(instance_ii1.n):
            assert pushed.job_total(j) == 1
