"""Property-based tests: the paper's theorems as hypothesis invariants.

* Theorem III.1 — Algorithm 1 always yields a valid schedule for feasible
  (IP-1) pairs;
* Proposition III.2 — ≤ m−1 migrations and ≤ 2m−2 transitions;
* Theorem IV.3 — Algorithms 2+3 always yield valid schedules for feasible
  (IP-2) pairs, over randomly generated laminar families;
* Lemmas IV.1 / IV.2 — the phase-one invariants (checked inside
  allocate_loads and re-asserted here).
"""

from fractions import Fraction

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import (
    Assignment,
    Instance,
    LaminarFamily,
    min_T_for_assignment,
    schedule_hierarchical,
    schedule_semi_partitioned,
    validate_schedule,
)
from repro.core.hierarchical import allocate_loads
from repro.schedule.metrics import (
    total_migrations_processing_order,
    total_preemptions_and_migrations,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def semi_partitioned_feasible(draw):
    """A random semi-partitioned instance + feasible (assignment, T)."""
    m = draw(st.integers(2, 6))
    n = draw(st.integers(1, 8))
    p_local = [
        [draw(st.integers(1, 12)) for _ in range(m)] for _ in range(n)
    ]
    # Monotone global times: at least the max local time of the job.
    p_global = [
        max(p_local[j]) + draw(st.integers(0, 4)) for j in range(n)
    ]
    inst = Instance.semi_partitioned(p_local=p_local, p_global=p_global)
    root = frozenset(range(m))
    masks = {}
    for j in range(n):
        if draw(st.booleans()):
            masks[j] = root
        else:
            masks[j] = frozenset([draw(st.integers(0, m - 1))])
    assignment = Assignment(masks)
    T = min_T_for_assignment(inst, assignment)
    slack = draw(st.integers(0, 3))
    if slack:
        T = T * (1 + Fraction(slack, 7))
    return inst, assignment, T


@st.composite
def laminar_family_strategy(draw, max_m: int = 8):
    """A random laminar tree family with all singletons."""
    m = draw(st.integers(2, max_m))
    sets = [frozenset(range(m))]

    def split(block):
        if len(block) < 2 or not draw(st.booleans()):
            return
        cut = draw(st.integers(1, len(block) - 1))
        left, right = block[:cut], block[cut:]
        for part in (left, right):
            if len(part) >= 2:
                sets.append(frozenset(part))
                split(part)

    split(list(range(m)))
    for i in range(m):
        sets.append(frozenset([i]))
    return LaminarFamily(range(m), set(sets))


@st.composite
def hierarchical_feasible(draw):
    """A random hierarchical instance + feasible (assignment, T)."""
    family = draw(laminar_family_strategy())
    n = draw(st.integers(1, 8))
    processing = {}
    for j in range(n):
        row = {}
        for alpha in family.bottom_up():
            if len(alpha) == 1:
                row[alpha] = draw(st.integers(1, 10))
            else:
                below = max(row[beta] for beta in family.children(alpha))
                row[alpha] = below + draw(st.integers(0, 3))
        processing[j] = row
    inst = Instance(family, processing)
    masks = {}
    sets = family.sets
    for j in range(n):
        masks[j] = sets[draw(st.integers(0, len(sets) - 1))]
    assignment = Assignment(masks)
    T = min_T_for_assignment(inst, assignment)
    slack = draw(st.integers(0, 2))
    if slack:
        T = T * (1 + Fraction(slack, 5))
    return inst, assignment, T


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@_SETTINGS
@given(semi_partitioned_feasible())
def test_theorem_iii1_algorithm1_always_valid(data):
    inst, assignment, T = data
    schedule = schedule_semi_partitioned(inst, assignment, T)
    report = validate_schedule(inst, assignment, schedule, T=T)
    assert report.valid, report.violations[:3]


@_SETTINGS
@given(semi_partitioned_feasible())
def test_proposition_iii2_transition_bounds(data):
    # Migrations are counted in processing order (the paper's accounting —
    # the mod-T wrap is a preemption, not a migration; see metrics module).
    inst, assignment, T = data
    schedule = schedule_semi_partitioned(inst, assignment, T)
    m = inst.m
    assert total_migrations_processing_order(schedule) <= m - 1
    assert total_preemptions_and_migrations(schedule) <= 2 * m - 2


@_SETTINGS
@given(hierarchical_feasible())
def test_theorem_iv3_hierarchical_always_valid(data):
    inst, assignment, T = data
    schedule = schedule_hierarchical(inst, assignment, T)
    report = validate_schedule(inst, assignment, schedule, T=T)
    assert report.valid, report.violations[:3]


@_SETTINGS
@given(hierarchical_feasible())
def test_lemma_iv1_and_iv2_invariants(data):
    inst, assignment, T = data
    allocation = allocate_loads(inst, assignment, T)  # asserts IV.1 internally
    family = inst.family
    volumes = {}
    for (i, alpha), value in allocation.load.items():
        assert value >= 0
        volumes[alpha] = volumes.get(alpha, Fraction(0)) + value
    # Volume conservation per set.
    for alpha in family.sets:
        expected = sum(
            (Fraction(inst.p(j, alpha)) for j in assignment.jobs_on(alpha)),
            Fraction(0),
        )
        assert volumes.get(alpha, Fraction(0)) == expected
    # Lemma IV.2: at most one shared machine per set.
    for beta in family.sets:
        assert len(allocation.shared_machines(family, beta)) <= 1


@_SETTINGS
@given(hierarchical_feasible())
def test_schedulers_preserve_integrality_when_T_integral(data):
    inst, assignment, T = data
    if T.denominator != 1:
        return  # wrap positions stay integral only for integral T
    schedule = schedule_hierarchical(inst, assignment, T)
    report = validate_schedule(
        inst, assignment, schedule, T=T, require_integral_times=True
    )
    assert report.valid, report.violations[:3]


@_SETTINGS
@given(semi_partitioned_feasible())
def test_algorithm1_and_hierarchical_agree_on_validity(data):
    inst, assignment, T = data
    s1 = schedule_semi_partitioned(inst, assignment, T)
    s2 = schedule_hierarchical(inst, assignment, T)
    for s in (s1, s2):
        assert validate_schedule(inst, assignment, s, T=T).valid
    # Both deliver the same total work.
    total1 = sum((s1.machine_load(i) for i in s1.machines), Fraction(0))
    total2 = sum((s2.machine_load(i) for i in s2.machines), Fraction(0))
    assert total1 == total2
