"""Property tests on the structural substrates: laminar families, schedules,
serialization, and the simulator's accounting identities."""

from fractions import Fraction

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import LaminarFamily, Schedule, schedule_hierarchical
from repro.schedule.serialize import schedule_from_json, schedule_to_json
from repro.simulation import CostModel, Topology, simulate
from repro.workloads import random_feasible_pair, rng_from_seed
from repro.workloads.generators import (
    monotone_instance,
    random_laminar_family,
    utilization_workload,
)

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@_SETTINGS
@given(st.integers(0, 10**6), st.integers(2, 10))
def test_laminar_structure_invariants(seed, m):
    rng = rng_from_seed(seed)
    fam = random_laminar_family(rng, m)
    for alpha in fam.sets:
        # level == number of supersets including self == ancestors + 1
        assert fam.level(alpha) == len(fam.ancestors(alpha)) + 1
        # children partition-or-undershoot the set, pairwise disjoint
        kids = fam.children(alpha)
        for a_idx in range(len(kids)):
            for b_idx in range(a_idx + 1, len(kids)):
                assert not (kids[a_idx] & kids[b_idx])
        for kid in kids:
            assert fam.parent(kid) == alpha
        # height consistency: leaf ⇒ 0, else 1 + min child height
        if kids:
            assert fam.height(alpha) == 1 + min(fam.height(k) for k in kids)
        else:
            assert fam.height(alpha) == 0
    # chains are sorted by inclusion
    for i in sorted(fam.machines):
        chain = fam.chain(i)
        for small, big in zip(chain, chain[1:]):
            assert small < big
    # subsets_of(root) covers the whole family for tree-rooted instances
    root = frozenset(fam.machines)
    if root in fam:
        assert set(fam.subsets_of(root)) == set(fam.sets)


@_SETTINGS
@given(st.integers(0, 10**6))
def test_serialize_roundtrip_random_schedules(seed):
    rng = rng_from_seed(seed)
    fam = random_laminar_family(rng, int(rng.integers(2, 6)))
    inst = monotone_instance(rng, fam, n=int(rng.integers(2, 7)))
    assignment, T = random_feasible_pair(rng, inst)
    schedule = schedule_hierarchical(inst, assignment, T)
    restored = schedule_from_json(schedule_to_json(schedule))
    assert restored.T == schedule.T
    assert restored.machines == schedule.machines
    for machine in schedule.machines:
        assert restored.timeline(machine).segments == schedule.timeline(machine).segments


@_SETTINGS
@given(st.integers(0, 10**6))
def test_simulator_overhead_is_sum_of_event_overheads(seed):
    rng = rng_from_seed(seed)
    topo = Topology.clustered(4, 2)
    cm = CostModel.xeon_like()
    inst = monotone_instance(rng, topo.family, n=int(rng.integers(2, 8)))
    assignment, T = random_feasible_pair(rng, inst)
    schedule = schedule_hierarchical(inst, assignment, T)
    trace = simulate(schedule, topo, cm)
    per_job = trace.job_stats()
    assert trace.total_overhead == sum(
        (s.overhead for s in per_job.values()), Fraction(0)
    )
    # Migration tier histogram total equals the migration event count.
    assert sum(trace.tier_histogram().values()) == trace.total_migrations


@_SETTINGS
@given(st.integers(0, 10**6), st.sampled_from([0.4, 0.7, 0.9, 1.0]))
def test_utilization_workload_hits_target(seed, u):
    rng = rng_from_seed(seed)
    fam = LaminarFamily.clustered(4, 2)
    T_ref = 40
    inst = utilization_workload(rng, fam, u, T_ref)
    total_min = sum(Fraction(inst.min_p(j)) for j in range(inst.n))
    target = Fraction(round(u * 4 * T_ref))
    # The generator hits the budget exactly up to the final-piece clamp.
    assert abs(total_min - target) <= max(1, T_ref // 2)
    # Every job remains schedulable somewhere within T_ref.
    for j in range(inst.n):
        assert inst.min_p(j) <= T_ref
