"""Tests for the revised simplex kernel, the LU basis, and the probe pipeline.

Covers the PR-4 acceptance criteria:

* revised-vs-tableau equivalence (status, objective, vertex support) on
  randomized LPs drawn from **every** workload family, plus hypothesis LPs;
* warm-start edge cases — degenerate hints with no positive ratio, a failed
  crash falling back to ratio-test pushes, Farkas-dual seeding across an
  infeasible→feasible probe pair;
* the structured pivot budget (:class:`~repro.exceptions.PivotLimitError`)
  and the ``bland_threshold``/``max_pivots`` parameters;
* hybrid certification still rejecting corrupted candidates under the
  factorized-basis verifier.
"""

from fractions import Fraction

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.programs import IP3Builder, minimal_fractional_T, _ProbeSession
from repro.exceptions import PivotLimitError, SolverError
from repro.lp import (
    LUBasis,
    LinearProgram,
    SolverStats,
    collect_stats,
    farkas_certifies,
    get_default_kernel,
    set_default_kernel,
    solve_lp,
    solve_standard,
    solve_standard_revised,
)
from repro.lp.certificates import denormalize_farkas
from repro.lp.simplex import standard_form
from repro.lp.solve import check_standard_rows, feasible_point_rows
from repro.workloads import FAMILIES, make_instance, make_topology, rng_from_seed


def _assert_equivalent(rows, senses, rhs, objective):
    """Tableau and (cold, Dantzig-priced) revised agree vertex-for-vertex."""
    tab = solve_standard(rows, senses, rhs, objective, kernel="tableau")
    rev = solve_standard_revised(rows, senses, rhs, objective, pricing="dantzig")
    assert tab.status == rev.status
    if tab.status == "optimal":
        assert tab.objective == rev.objective
        assert tab.x == rev.x  # identical vertex, not just identical value
        assert tab.basis == rev.basis
    return tab, rev


class TestKernelEquivalence:
    def test_all_workload_families(self):
        """IP-3 decision LPs from every family: identical vertices."""
        topo = make_topology("clustered4x2")
        for i, name in enumerate(sorted(FAMILIES)):
            inst = make_instance(name, rng_from_seed(900 + i), topo, n=6)
            builder = IP3Builder(inst)
            if not builder.breakpoints:
                continue
            for T in (builder.breakpoints[0], builder.breakpoints[-1]):
                rows, senses, rhs, active = builder.probe_rows(T)
                objective = [Fraction(0)] * len(active)
                _assert_equivalent(rows, senses, rhs, objective)

    def test_t_star_matches_across_kernels_and_families(self):
        topo = make_topology("smp2x2x2")
        saved = get_default_kernel()
        try:
            for i, name in enumerate(sorted(FAMILIES)):
                inst = make_instance(name, rng_from_seed(40 + i), topo, n=5)
                set_default_kernel("tableau")
                t_tab = minimal_fractional_T(inst, backend="exact")
                set_default_kernel("revised")
                t_rev = minimal_fractional_T(inst, backend="exact")
                assert t_tab == t_rev
        finally:
            set_default_kernel(saved)

    def test_partial_pricing_same_value(self):
        """Partial pricing may pick another vertex, never another optimum."""
        topo = make_topology("flat4")
        inst = make_instance("heavy_tailed", rng_from_seed(7), topo, n=6)
        builder = IP3Builder(inst)
        rows, senses, rhs, active = builder.probe_rows(builder.breakpoints[-1])
        objective = [Fraction(1)] * len(active)
        full = solve_standard_revised(rows, senses, rhs, objective, pricing="dantzig")
        part = solve_standard_revised(rows, senses, rhs, objective, pricing="partial")
        assert full.status == part.status == "optimal"
        assert full.objective == part.objective
        # Both are vertices: support bounded by the row count.
        assert sum(1 for v in part.x if v) <= len(rows)

    def test_unknown_pricing_rejected(self):
        with pytest.raises(SolverError):
            solve_standard_revised([], [], [], [Fraction(1)], pricing="newton")
        with pytest.raises(SolverError):
            solve_standard(
                [], [], [], [Fraction(1)], kernel="tableau", pricing="partial"
            )


@st.composite
def random_lp(draw):
    n = draw(st.integers(1, 4))
    r = draw(st.integers(1, 4))
    rows, senses, rhs = [], [], []
    for _ in range(r):
        row = {
            j: Fraction(draw(st.integers(-4, 4)), draw(st.integers(1, 3)))
            for j in range(n)
            if draw(st.booleans())
        }
        rows.append(row)
        senses.append(draw(st.sampled_from(["<=", ">=", "=="])))
        rhs.append(Fraction(draw(st.integers(-6, 6)), draw(st.integers(1, 3))))
    objective = [Fraction(draw(st.integers(-3, 3))) for _ in range(n)]
    return rows, senses, rhs, objective


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(random_lp())
def test_kernels_agree_on_random_lps(data):
    rows, senses, rhs, objective = data
    tab, rev = _assert_equivalent(rows, senses, rhs, objective)
    if rev.status == "infeasible":
        # The revised kernel's certificate is a verified proof.
        assert rev.farkas is not None
        assert farkas_certifies(rows, senses, rhs, rev.farkas)


class TestLUBasis:
    def test_factorize_identity_roundtrip(self):
        cols = [{0: 2, 1: 1}, {1: 3}, {0: 1, 2: 5}]
        b = [4, 6, 10]
        lub = LUBasis.factorize(3, cols, b)
        assert lub is not None
        # B · x = b with x = rhs/den: verify column-wise.
        for r in range(3):
            lhs = sum(cols[c].get(r, 0) * lub.rhs[c] for c in range(3))
            assert lhs == b[r] * lub.den

    def test_factorize_singular_returns_none(self):
        cols = [{0: 1, 1: 1}, {0: 2, 1: 2}, {2: 1}]
        assert LUBasis.factorize(3, cols, [1, 2, 3]) is None

    def test_ftran_btran_consistency(self):
        cols = [{0: 3, 1: 1}, {1: 2, 2: 1}, {2: 4}]
        lub = LUBasis.factorize(3, cols, [1, 1, 1])
        probe = {0: 5, 2: 7}
        alpha = lub.ftran(probe)
        # W·a and c·W agree with a direct elementwise evaluation (rows may
        # be stored sparse: read entries through row_items).
        w = [dict(lub.row_items(i)) for i in range(3)]
        for i in range(3):
            assert alpha[i] == sum(
                w[i].get(k, 0) * v for k, v in probe.items()
            )
        y = lub.btran({0: 2, 2: -1})
        for j in range(3):
            assert y[j] == 2 * w[0].get(j, 0) - w[2].get(j, 0)

    def test_refactorize_is_canonical(self):
        """A from-scratch refactorization reproduces the updated state."""
        cols = [{0: 2, 1: 1}, {1: 3, 2: 1}, {0: 1, 2: 2}]
        b = [3, 5, 7]
        lub = LUBasis.factorize(3, cols, b)
        den = lub.den
        inv = [dict(lub.row_items(i)) for i in range(3)]
        rhs = lub.rhs[:]
        assert lub.refactorize(cols, b)
        assert lub.den == den
        assert [dict(lub.row_items(i)) for i in range(3)] == inv
        assert lub.rhs == rhs
        assert lub.refactorizations == 1


class TestWarmStartEdgeCases:
    def test_degenerate_hint_no_positive_ratio(self):
        """A hint column with no positive entry is skipped harmlessly."""
        # x0 only appears with negative coefficient in a <= row: its
        # transformed column has no positive ratio; pushing it must not
        # corrupt the solve.
        rows = [{0: Fraction(-1), 1: Fraction(1)}]
        senses = ["<="]
        rhs = [Fraction(2)]
        objective = [Fraction(0), Fraction(-1)]
        result = solve_standard_revised(
            rows, senses, rhs, objective, warm_hints=[0]
        )
        assert result.status == "unbounded"

    def test_bad_warm_point_repaired(self):
        """An infeasible warm point costs pivots, never correctness."""
        lp = LinearProgram()
        lp.add_variable("x", ub=2)
        lp.add_variable("y", ub=3)
        lp.add_constraint({"x": 1, "y": 2}, "<=", 4)
        lp.set_objective({"x": -1, "y": -1})
        good = solve_lp(lp, backend="exact")
        bad = solve_lp(
            lp, backend="exact",
            warm_values={"x": Fraction(100), "y": Fraction(100)},
        )
        assert bad.status == "optimal"
        assert bad.objective == good.objective

    def test_crash_hit_skips_phase1(self):
        """A feasible warm point factorizes straight past phase 1."""
        rows = [
            {j: Fraction(1) for j in range(4)},
            {0: Fraction(2), 1: Fraction(1)},
        ]
        senses = ["==", "<="]
        rhs = [Fraction(2), Fraction(3)]
        objective = [Fraction(1), Fraction(2), Fraction(3), Fraction(4)]
        cold = solve_standard_revised(rows, senses, rhs, objective)
        warm = solve_standard_revised(
            rows, senses, rhs, objective, warm_point=cold.x
        )
        assert warm.status == "optimal" and warm.objective == cold.objective
        assert warm.stats.warm_start_hits == 1
        assert warm.stats.phase1_pivots == 0
        assert warm.pivots <= cold.pivots

    def test_farkas_seeding_infeasible_to_feasible_probe_pair(self):
        """The pipeline's certificate survives exactly while T is infeasible."""
        inst = make_instance(
            "near_critical", rng_from_seed(11), make_topology("clustered4x2"), n=6
        )
        builder = IP3Builder(inst)
        t_star = minimal_fractional_T(inst, backend="exact")
        points = builder.breakpoints
        # Infeasible horizons at which every job still has an option (the
        # structurally-infeasible ones are decided without an LP and thus
        # without a certificate).
        infeasible_ts = [
            t
            for t in points
            if t < t_star
            and all(
                any(builder.var_p[gi] <= t for gi in group)
                for group in builder.assign_template
            )
        ][-2:]
        feasible_t = next(t for t in points if t >= t_star)
        if not infeasible_ts:
            pytest.skip("no LP-infeasible breakpoint below T*")
        session = _ProbeSession(builder, "exact")
        # First infeasible probe solves and stores a verified certificate.
        assert session.probe(infeasible_ts[0]) is None
        assert session.farkas is not None
        rows0 = builder.probe_rows(infeasible_ts[0])[:3]
        assert farkas_certifies(*rows0, session.farkas)
        # Second infeasible probe is answered by certificate reuse when the
        # certificate transfers (and by a fresh solve otherwise) — either
        # way the verdict is infeasible.
        with collect_stats() as stats:
            assert session.probe(infeasible_ts[-1]) is None
        assert stats.farkas_reuses + stats.solves >= 1
        # The feasible side of the pair: the stale certificate must NOT
        # certify the feasible LP, and the probe must find a point.
        rows1 = builder.probe_rows(feasible_t)[:3]
        assert not farkas_certifies(*rows1, session.farkas)
        point = session.probe(feasible_t)
        assert point is not None
        coeff, senses, rhs, active = builder.probe_rows(feasible_t)
        dense = [Fraction(0)] * len(active)
        for li, gi in enumerate(active):
            dense[li] = point.get(gi, Fraction(0))
        assert check_standard_rows(coeff, senses, rhs, dense)

    def test_point_reuse_across_probes(self):
        """A downward probe inside the feasible region reuses the point."""
        inst = make_instance(
            "density", rng_from_seed(3), make_topology("flat4"), n=5
        )
        builder = IP3Builder(inst)
        points = builder.breakpoints
        session = _ProbeSession(builder, "exact")
        assert session.probe(points[-1]) is not None
        with collect_stats() as stats:
            verdict = session.probe(points[-1])  # same horizon: trivial reuse
        assert verdict is not None
        assert stats.point_reuses == 1 and stats.solves == 0


class TestPivotBudget:
    def test_structured_error_fields(self):
        rows = [{0: Fraction(1), 1: Fraction(1)}, {0: Fraction(1)}]
        senses = ["==", "<="]
        rhs = [Fraction(1), Fraction(1)]
        objective = [Fraction(-1), Fraction(1)]
        for kernel in ("revised", "tableau"):
            with pytest.raises(PivotLimitError) as err:
                solve_standard(
                    rows, senses, rhs, objective, kernel=kernel, max_pivots=1
                )
            assert err.value.budget == 1
            assert err.value.pivots == 2
            assert err.value.kernel == kernel
            assert err.value.phase in (1, 2)

    def test_default_budget_solves_fine(self):
        rows = [{0: Fraction(1)}]
        result = solve_standard(rows, ["<="], [Fraction(1)], [Fraction(-1)])
        assert result.status == "optimal"

    def test_bland_threshold_zero_still_terminates(self):
        """Bland-from-pivot-0 is slower but exact — a pure safety rule."""
        rows = [
            {0: Fraction(1), 1: Fraction(2), 2: Fraction(1)},
            {0: Fraction(3), 1: Fraction(1)},
        ]
        senses = ["<=", "<="]
        rhs = [Fraction(4), Fraction(6)]
        objective = [Fraction(-1), Fraction(-1), Fraction(-1)]
        a = solve_standard(rows, senses, rhs, objective, bland_threshold=0)
        b = solve_standard(rows, senses, rhs, objective)
        assert a.status == b.status == "optimal"
        assert a.objective == b.objective


class TestHybridCertification:
    def test_corrupted_candidate_rejected(self, monkeypatch):
        """A wrong float candidate is repaired by the exact verifier."""
        import repro.lp.hybrid as hybrid_mod
        from repro.lp.simplex import SimplexResult

        lp = LinearProgram()
        for j in range(10):
            lp.add_variable(("x", j), lb=0)
        lp.add_constraint({("x", j): 1 for j in range(10)}, "==", 1)
        lp.add_constraint(
            {("x", j): Fraction(j + 1) for j in range(10)}, "<=", 3
        )
        lp.set_objective({("x", j): Fraction(j + 1) for j in range(10)})

        def corrupted(coeff_rows, senses, rhs, objective):
            # Claims optimality at a wildly infeasible point.
            return SimplexResult(
                "optimal", [Fraction(5)] * len(objective), Fraction(0), None
            )

        monkeypatch.setattr(hybrid_mod, "float_candidate", corrupted)
        monkeypatch.setattr(hybrid_mod, "_FLOAT_SIZE_CUTOFF", 0)
        solution = solve_lp(lp, backend="hybrid")
        assert solution.is_optimal
        assert solution.objective == Fraction(1)  # true optimum: all on x0

    def test_corrupted_infeasibility_claim_rejected(self, monkeypatch):
        import repro.lp.hybrid as hybrid_mod
        from repro.lp.simplex import SimplexResult

        lp = LinearProgram()
        for j in range(8):
            lp.add_variable(("x", j), lb=0)
        lp.add_constraint({("x", j): 1 for j in range(8)}, "==", 1)

        def lying(coeff_rows, senses, rhs, objective):
            return SimplexResult("infeasible", [], None, None)

        monkeypatch.setattr(hybrid_mod, "float_candidate", lying)
        monkeypatch.setattr(hybrid_mod, "_FLOAT_SIZE_CUTOFF", 0)
        # certify_infeasible cannot produce a proof for a feasible program,
        # so the exact solver re-derives the true verdict.
        solution = solve_lp(lp, backend="hybrid")
        assert solution.is_optimal


class TestCertificates:
    def test_denormalize_flips_negative_rhs_rows(self):
        y = [Fraction(1), Fraction(2)]
        out = denormalize_farkas(y, [Fraction(-3), Fraction(3)])
        assert out == [Fraction(-1), Fraction(2)]

    def test_farkas_rejects_wrong_length_and_signs(self):
        rows = [{0: Fraction(1)}]
        assert not farkas_certifies(rows, ["<="], [Fraction(1)], [])
        # y > 0 on a <= row violates the sign condition.
        assert not farkas_certifies(rows, ["<="], [Fraction(1)], [Fraction(1)])

    def test_feasible_point_rows_returns_certificate(self):
        rows = [{0: Fraction(1)}, {0: Fraction(1)}]
        senses = [">=", "<="]
        rhs = [Fraction(3), Fraction(1)]
        point, farkas = feasible_point_rows(rows, senses, rhs, 1, backend="exact")
        assert point is None and farkas is not None
        assert farkas_certifies(rows, senses, rhs, farkas)


class TestStatsPlumbing:
    def test_lp_solution_carries_stats(self):
        lp = LinearProgram()
        lp.add_variable("x", ub=1)
        lp.set_objective({"x": -1})
        solution = solve_lp(lp, backend="exact")
        assert isinstance(solution.stats, SolverStats)
        assert solution.stats.kernels.get("revised") == 1

    def test_collect_stats_nested_scopes(self):
        lp = LinearProgram()
        lp.add_variable("x", ub=1)
        lp.set_objective({"x": -1})
        with collect_stats() as outer:
            solve_lp(lp, backend="exact")
            with collect_stats() as inner:
                solve_lp(lp, backend="exact")
        assert inner.solves == 1
        assert outer.solves == 2
        assert "solves" in outer.render()

    def test_profile_cli_flag(self, capsys):
        from repro.cli import main

        assert main(["solve", "--demo", "ii1", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "solver profile:" in out
        assert "pivots" in out

    def test_kernel_cli_flag_sets_default(self):
        from repro.cli import main

        saved = get_default_kernel()
        try:
            assert main(["experiments", "e01", "--kernel", "tableau"]) == 0
            assert get_default_kernel() == "tableau"
        finally:
            set_default_kernel(saved)


def test_standard_form_unchanged_contract():
    """The shared standard form still sign-normalizes rows to b ≥ 0."""
    std = standard_form(
        [{0: Fraction(1)}], ["<="], [Fraction(-2)], [Fraction(0)]
    )
    assert std.senses == [">="]
    assert std.rhs == [Fraction(2)]
