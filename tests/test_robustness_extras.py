"""Final robustness batch: degenerate LPs and fractional-time instances."""

from fractions import Fraction

import pytest

from repro import (
    Assignment,
    Instance,
    min_T_for_assignment,
    schedule_hierarchical,
    solve_exact,
    two_approximation,
    validate_schedule,
)
from repro.lp import LinearProgram, solve_lp, solve_standard


class TestDegenerateLPs:
    def test_zero_rhs_degenerate_vertex(self):
        # Multiple constraints tight at the origin — classic degeneracy.
        result = solve_standard(
            coeff_rows=[
                {0: Fraction(1), 1: Fraction(-1)},
                {0: Fraction(-1), 1: Fraction(1)},
                {0: Fraction(1), 1: Fraction(1)},
            ],
            senses=["<=", "<=", "<="],
            rhs=[Fraction(0), Fraction(0), Fraction(2)],
            objective=[Fraction(-1), Fraction(-1)],
        )
        assert result.status == "optimal"
        assert result.objective == -2  # x = y = 1

    def test_beale_style_cycling_candidate(self):
        # Beale's classic cycling constraint matrix (harmless under our
        # Bland switch-over); cross-check the exact optimum against HiGHS.
        from repro.lp.scipy_backend import solve_standard_float

        rows = [
            {0: Fraction(1, 4), 1: Fraction(-8), 2: Fraction(-1), 3: Fraction(9)},
            {0: Fraction(1, 2), 1: Fraction(-12), 2: Fraction(-1, 2), 3: Fraction(3)},
            {2: Fraction(1)},
        ]
        senses = ["<=", "<=", "<="]
        rhs = [Fraction(0), Fraction(0), Fraction(1)]
        objective = [Fraction(-3, 4), Fraction(150), Fraction(-1, 50), Fraction(6)]
        result = solve_standard(rows, senses, rhs, objective)
        assert result.status == "optimal"
        assert result.objective == Fraction(-77, 100)
        floaty = solve_standard_float(rows, senses, rhs, objective)
        assert floaty.objective == result.objective

    def test_empty_objective_feasibility(self):
        lp = LinearProgram()
        lp.add_variable("x", ub=5)
        lp.add_constraint({"x": 1}, ">=", 2)
        solution = solve_lp(lp)
        assert solution.is_optimal
        assert 2 <= solution.value("x") <= 5

    def test_all_equality_square_system(self):
        result = solve_standard(
            coeff_rows=[
                {0: Fraction(2), 1: Fraction(1)},
                {0: Fraction(1), 1: Fraction(3)},
            ],
            senses=["==", "=="],
            rhs=[Fraction(5), Fraction(10)],
            objective=[Fraction(0), Fraction(0)],
        )
        assert result.status == "optimal"
        assert result.x == [Fraction(1), Fraction(3)]


class TestFractionalTimeInstances:
    @pytest.fixture
    def frac_instance(self):
        # All processing times are non-integer rationals.
        return Instance.semi_partitioned(
            p_local=[
                [Fraction(3, 2), Fraction(5, 2)],
                [Fraction(7, 3), Fraction(4, 3)],
                [Fraction(1, 2), Fraction(1, 2)],
            ],
            p_global=[Fraction(5, 2), Fraction(7, 3), Fraction(3, 4)],
        )

    def test_exact_solver(self, frac_instance):
        result = solve_exact(frac_instance)
        schedule = result.build_schedule(frac_instance)
        assert validate_schedule(
            frac_instance, result.assignment, schedule
        ).valid

    def test_two_approximation(self, frac_instance):
        result = two_approximation(frac_instance)
        assert result.makespan <= 2 * result.T_lp
        assert validate_schedule(
            result.instance, result.assignment, result.schedule
        ).valid

    def test_schedulers_exact_arithmetic(self, frac_instance):
        root = frozenset({0, 1})
        assignment = Assignment({0: {0}, 1: {1}, 2: root})
        T = min_T_for_assignment(frac_instance, assignment)
        schedule = schedule_hierarchical(frac_instance, assignment, T)
        report = validate_schedule(frac_instance, assignment, schedule, T=T)
        assert report.valid
        # Delivered work is exactly the rational processing times.
        assert schedule.work_of(2) == Fraction(3, 4)

    def test_monotonicity_applies_to_fractions(self):
        from repro.exceptions import MonotonicityError

        with pytest.raises(MonotonicityError):
            Instance.semi_partitioned(
                p_local=[[Fraction(3, 2), Fraction(3, 2)]],
                p_global=[Fraction(4, 3)],
            )
