"""Tests for the rounding substrate: matching, pseudoforests, LST."""

from fractions import Fraction

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.exceptions import InfeasibleError, RoundingError
from repro.rounding import (
    connected_components,
    is_pseudoforest,
    lst_round,
    maximum_bipartite_matching,
    round_fractional_solution,
)
from repro.rounding.lst import assignment_loads, build_unrelated_lp
from repro.rounding.matching import is_perfect_on_left


class TestMatching:
    def test_simple_perfect(self):
        matching = maximum_bipartite_matching({0: [10], 1: [11]})
        assert matching == {0: 10, 1: 11}

    def test_augmenting_path_needed(self):
        # Greedy 0→10 must be undone so 1 (only 10) can match.
        matching = maximum_bipartite_matching({0: [10, 11], 1: [10]})
        assert matching == {0: 11, 1: 10}

    def test_maximum_not_perfect(self):
        matching = maximum_bipartite_matching({0: [10], 1: [10]})
        assert len(matching) == 1

    def test_empty_adjacency(self):
        assert maximum_bipartite_matching({}) == {}
        assert maximum_bipartite_matching({0: []}) == {}

    def test_is_perfect_on_left(self):
        adjacency = {0: [10], 1: [10]}
        matching = maximum_bipartite_matching(adjacency)
        assert not is_perfect_on_left(adjacency, matching)
        assert is_perfect_on_left({0: [], 1: [10]}, {1: 10})

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.dictionaries(
            st.integers(0, 6),
            st.sets(st.integers(100, 106), max_size=4),
            max_size=7,
        )
    )
    def test_agrees_with_networkx(self, adjacency):
        import networkx as nx

        graph = nx.Graph()
        left = set(adjacency)
        graph.add_nodes_from(left, bipartite=0)
        for u, vs in adjacency.items():
            for v in vs:
                graph.add_edge(u, v)
        ours = maximum_bipartite_matching({u: list(vs) for u, vs in adjacency.items()})
        if graph.number_of_edges():
            theirs = nx.bipartite.maximum_matching(graph, top_nodes=left)
            theirs_size = sum(1 for k in theirs if k in left)
        else:
            theirs_size = 0
        assert len(ours) == theirs_size


class TestPseudoforest:
    def test_tree_component(self):
        comps = connected_components([(1, 2), (2, 3)])
        assert len(comps) == 1
        assert comps[0].is_pseudotree and not comps[0].has_cycle

    def test_single_cycle(self):
        comps = connected_components([(1, 2), (2, 3), (3, 1)])
        assert comps[0].has_cycle and comps[0].is_pseudotree

    def test_two_cycles_not_pseudotree(self):
        edges = [(1, 2), (2, 3), (3, 1), (3, 4), (4, 5), (5, 3)]
        assert not is_pseudoforest(edges)

    def test_multiple_components(self):
        comps = connected_components([(1, 2), (3, 4)])
        assert len(comps) == 2
        assert is_pseudoforest([(1, 2), (3, 4)])

    def test_empty(self):
        assert connected_components([]) == []
        assert is_pseudoforest([])


class TestBuildUnrelatedLP:
    def test_pruning_excludes_large_times(self):
        lp = build_unrelated_lp({0: {0: 1, 1: 5}}, T=3)
        assert lp.has_variable(("x", 0, 0))
        assert not lp.has_variable(("x", 1, 0))

    def test_job_without_options_infeasible(self):
        from repro.lp import solve_lp

        lp = build_unrelated_lp({0: {0: 5}}, T=3)
        assert solve_lp(lp).status == "infeasible"


class TestRoundFractionalSolution:
    def test_integral_passthrough(self):
        values = {("x", 0, 0): Fraction(1), ("x", 1, 1): Fraction(1)}
        assert round_fractional_solution(values) == {0: 0, 1: 1}

    def test_single_fractional_pair_matched(self):
        values = {
            ("x", 0, 0): Fraction(1, 2),
            ("x", 1, 0): Fraction(1, 2),
        }
        result = round_fractional_solution(values)
        assert result[0] in (0, 1)

    def test_path_component(self):
        # jobs 0,1 fractionally share machine 1 in a path 0-0-1-1-2.
        values = {
            ("x", 0, 0): Fraction(1, 2),
            ("x", 1, 0): Fraction(1, 2),
            ("x", 1, 1): Fraction(1, 2),
            ("x", 2, 1): Fraction(1, 2),
        }
        result = round_fractional_solution(values)
        assert result[0] != result[1]

    def test_cycle_component(self):
        # 2 jobs sharing machines 0 and 1 in a 4-cycle.
        values = {
            ("x", 0, 0): Fraction(1, 2),
            ("x", 1, 0): Fraction(1, 2),
            ("x", 0, 1): Fraction(1, 2),
            ("x", 1, 1): Fraction(1, 2),
        }
        result = round_fractional_solution(values)
        assert {result[0], result[1]} == {0, 1}

    def test_double_integral_raises(self):
        values = {("x", 0, 0): Fraction(1), ("x", 1, 0): Fraction(1)}
        with pytest.raises(RoundingError):
            round_fractional_solution(values)

    def test_non_basic_input_rejected(self):
        # 3 jobs × 3 machines all at 1/3: 9 edges, 6 nodes — not a pseudoforest.
        values = {
            ("x", i, j): Fraction(1, 3) for i in range(3) for j in range(3)
        }
        with pytest.raises(RoundingError):
            round_fractional_solution(values)


class TestLSTRound:
    def test_infeasible_horizon_raises(self):
        with pytest.raises(InfeasibleError):
            lst_round({0: {0: 5}}, T=3)

    def test_load_bound_2T(self):
        p = {
            0: {0: 3, 1: 3},
            1: {0: 3, 1: 3},
            2: {0: 3, 1: 3},
        }
        T = Fraction(9, 2)
        mapping = lst_round(p, T)
        loads = assignment_loads(p, mapping)
        assert all(load <= 2 * T for load in loads.values())
        assert set(mapping) == {0, 1, 2}

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10**6))
    def test_bound_holds_on_random_instances(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        m = int(rng.integers(2, 5))
        p = {
            j: {i: int(rng.integers(1, 12)) for i in range(m)} for j in range(n)
        }
        from repro.baselines import minimal_unrelated_T

        T = minimal_unrelated_T(p)
        mapping = lst_round(p, T)
        loads = assignment_loads(p, mapping)
        assert set(mapping) == set(range(n))
        assert all(load <= 2 * T for load in loads.values())
        # Every job placed on a machine with p_ij ≤ T (the pruning).
        for j, i in mapping.items():
            assert p[j][i] <= T

    def test_scipy_backend(self):
        p = {0: {0: 2, 1: 2}, 1: {0: 2, 1: 2}}
        mapping = lst_round(p, 2, backend="scipy")
        assert sorted(mapping) == [0, 1]
