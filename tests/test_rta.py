"""RTA engine: soundness, busy-window exactness, the admission pre-filter,
and the E15/E19 reproducibility regressions (PR 10)."""

import json
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.restrictions import (
    SCHEDULER_CLASSES,
    exact_schedulable_within,
    restrict_instance,
    restricted_family_for,
)
from repro.core.assignment import min_T_for_assignment, verify_ip2
from repro.core.exact import find_assignment_within
from repro.core.hierarchical import schedule_hierarchical
from repro.core.instance import Instance
from repro.core.laminar import LaminarFamily
from repro.exceptions import AnalyticSoundnessError, SolverError
from repro.lp.stats import collect_stats
from repro.rta import (
    SCHEDULABLE,
    UNKNOWN,
    UNSCHEDULABLE,
    analytic_schedulable,
    demand_profile,
    infeasibility_witness,
    makespan_bound,
    response_bounds,
)
from repro.simulation.admission import witness_within
from repro.workloads import rng_from_seed
from repro.workloads.generators import utilization_workload

_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

T_REF = 20


def _workload(seed, u, family=None):
    family = family or LaminarFamily.clustered(4, 2)
    return utilization_workload(rng_from_seed(seed), family, u, T_REF)


class TestSoundness:
    @_SETTINGS
    @given(
        st.integers(0, 10**6),
        st.sampled_from([0.4, 0.7, 0.9, 1.0, 1.1]),
        st.sampled_from(SCHEDULER_CLASSES),
    )
    def test_decided_verdicts_agree_with_exact(self, seed, u, cls):
        """SCHEDULABLE ⇒ the exact search succeeds; UNSCHEDULABLE ⇒ it
        fails.  The acceptance-criterion property, over random workloads."""
        inst = _workload(seed, u)
        verdict = analytic_schedulable(inst, cls, T_REF)
        if verdict.status == UNKNOWN:
            return
        truth = exact_schedulable_within(inst, cls, T_REF)
        assert (verdict.status == SCHEDULABLE) == truth, verdict.reason

    @_SETTINGS
    @given(st.integers(0, 10**6), st.sampled_from([0.5, 0.9, 1.05]))
    def test_global_class_always_decided(self, seed, u):
        """With one admissible set there is one assignment: either it fits
        (FFD places everything) or the root demand bound refutes — the
        engine is complete for the global class."""
        inst = _workload(seed, u)
        assert analytic_schedulable(inst, "global", T_REF).decided

    def test_schedulable_witness_is_verified_and_lp_free(self):
        with collect_stats() as stats:
            found = 0
            for seed in range(10):
                inst = _workload(seed, 0.7)
                verdict = analytic_schedulable(inst, "hierarchical", T_REF)
                if verdict.status != SCHEDULABLE:
                    continue
                found += 1
                restricted = restrict_instance(
                    inst, restricted_family_for(inst, "hierarchical")
                )
                assert verify_ip2(restricted, verdict.assignment, T_REF).feasible
        assert found > 0
        assert stats.solves == 0 and stats.pivots == 0

    def test_class_inapplicable_is_unschedulable(self):
        # A flat identical-machines family has no singletons: partitioned
        # scheduling cannot express the instance and loses it (the E15
        # convention).
        inst = Instance.identical(3, [4, 4, 4])
        verdict = analytic_schedulable(inst, "partitioned", 10)
        assert verdict.status == UNSCHEDULABLE
        assert verdict.reason == "class-inapplicable"
        assert not exact_schedulable_within(inst, "partitioned", 10)


class TestDemandBounds:
    def test_no_feasible_mask(self):
        inst = Instance.identical(2, [9, 1])
        profile = demand_profile(inst, 5)
        witness = infeasibility_witness(inst, profile)
        assert witness is not None and witness["test"] == "no-feasible-mask"
        assert find_assignment_within(inst, 5) is None

    def test_demand_bound_violation(self):
        # Three jobs trapped in a 1-machine subtree of a 2-level family.
        fam = LaminarFamily.semi_partitioned(2)
        root = frozenset({0, 1})
        inst = Instance(
            fam,
            {
                j: {frozenset({0}): 4, frozenset({1}): 10**6, root: 10**6}
                for j in range(3)
            },
            validate=False,
        )
        profile = demand_profile(inst, 10)
        witness = infeasibility_witness(inst, profile)
        assert witness is not None and witness["test"] == "demand-bound"
        assert witness["lhs"] == 12 and witness["rhs"] == 10
        assert find_assignment_within(inst, 10) is None

    def test_heavy_singleton_pigeonhole(self):
        # Three pinned-only jobs each > T/2 on two machines: no two share.
        inst = Instance.unrelated([[3, 3], [3, 3], [3, 3]])
        profile = demand_profile(inst, 5)
        witness = infeasibility_witness(inst, profile)
        assert witness is not None
        assert witness["test"] == "heavy-singleton-pigeonhole"
        assert find_assignment_within(inst, 5) is None

    def test_feasible_instance_has_no_witness(self):
        inst = Instance.identical(2, [2, 2, 2])
        assert infeasibility_witness(inst, demand_profile(inst, 3)) is None


class TestBusyWindows:
    def test_closed_form_identical_machines(self):
        # Three unit-speed jobs of length 2 on 2 machines, all on the root:
        # W(M) = 6/2 = 3 — McNaughton's bound, and the response bound of
        # every job.
        inst = Instance.identical(2, [2, 2, 2])
        verdict = analytic_schedulable(inst, "global", 3)
        assert verdict.status == SCHEDULABLE
        assert verdict.certificate["makespan_bound"] == 3
        assert all(b == 3 for b in verdict.response_bounds.values())

    @_SETTINGS
    @given(st.integers(0, 10**6), st.sampled_from([0.5, 0.8]))
    def test_makespan_bound_equals_min_T(self, seed, u):
        """max_roots W(root) is exactly min_T_for_assignment — the busy
        window fixpoint converges in one step to the IP-2 optimum."""
        inst = _workload(seed, u)
        verdict = analytic_schedulable(inst, "hierarchical", T_REF)
        if verdict.status != SCHEDULABLE:
            return
        restricted = restrict_instance(
            inst, restricted_family_for(inst, "hierarchical")
        )
        bound = makespan_bound(restricted, verdict.assignment)
        assert bound == min_T_for_assignment(restricted, verdict.assignment)
        assert bound == verdict.certificate["makespan_bound"] <= T_REF
        assert bound == max(verdict.response_bounds.values())

    def test_bounds_are_realizable(self):
        """A schedule built at the makespan bound completes every job by
        its response bound (the witness semantics of the busy window)."""
        inst = _workload(3, 0.7)
        verdict = analytic_schedulable(inst, "hierarchical", T_REF)
        assert verdict.status == SCHEDULABLE
        restricted = restrict_instance(
            inst, restricted_family_for(inst, "hierarchical")
        )
        bound = verdict.certificate["makespan_bound"]
        schedule = schedule_hierarchical(restricted, verdict.assignment, bound)
        for j in range(restricted.n):
            completion = max(s.end for _m, s in schedule.job_segments(j))
            assert completion <= verdict.response_bounds[j]

    def test_response_bounds_exact_fractions(self):
        inst = _workload(5, 0.8)
        verdict = analytic_schedulable(inst, "hierarchical", T_REF)
        if verdict.status == SCHEDULABLE:
            assert all(
                isinstance(b, Fraction) for b in verdict.response_bounds.values()
            )


class TestPrefilter:
    @_SETTINGS
    @given(st.integers(0, 10**6), st.sampled_from([0.6, 0.95, 1.05]))
    def test_prefilter_identity(self, seed, u):
        """The acceptance criterion: the pre-filter never changes which
        instances get a witness, nor which witness they get."""
        inst = _workload(seed, u).with_singletons()
        with_pf = witness_within(inst, T_REF, prefilter=True)
        without = witness_within(inst, T_REF, prefilter=False)
        assert with_pf == without

    @_SETTINGS
    @given(st.integers(0, 10**6), st.sampled_from([0.6, 0.95]))
    def test_analytic_witness_fast_path_is_sound(self, seed, u):
        inst = _workload(seed, u).with_singletons()
        witness = witness_within(inst, T_REF, analytic_witness=True)
        exact = witness_within(inst, T_REF, prefilter=False)
        # Fast path and search agree on *whether* a witness exists…
        assert (witness is None) == (exact is None)
        # …and any fast-path witness is itself IP-2 feasible.
        if witness is not None:
            restricted = restrict_instance(
                inst, restricted_family_for(inst, "hierarchical")
            )
            assert verify_ip2(restricted, witness, T_REF).feasible


class TestE15Regressions:
    def test_sweep_rows_equal_serial_rows(self):
        """Per-level derived seeds: a sweep task per utilization level
        reproduces the serial run bit-for-bit (the PR-10 rng bugfix)."""
        from repro.experiments.e15_schedulability import run

        full = run(utilizations=(0.6, 0.9), m=4, T_ref=20, trials=3)
        parts = [
            run(utilizations=(u,), m=4, T_ref=20, trials=3)
            for u in (0.6, 0.9)
        ]
        assert full.rows == parts[0].rows + parts[1].rows
        # Byte-level: the JSON payload rows concatenate identically.
        full_rows = json.dumps(full.table.to_json()["rows"], sort_keys=True)
        part_rows = json.dumps(
            parts[0].table.to_json()["rows"] + parts[1].table.to_json()["rows"],
            sort_keys=True,
        )
        assert full_rows == part_rows

    def test_acceptance_is_exact_fraction(self):
        from repro.experiments.e15_schedulability import run

        result = run(utilizations=(0.9,), m=4, T_ref=20, trials=3)
        for row in result.rows:
            for value in row.acceptance.values():
                assert isinstance(value, Fraction)
                assert value.denominator in (1, 3)
        # Round-trips through the payload encoding unchanged.
        encoded = result.table.to_json()
        from repro.analysis.tables import Table

        assert Table.from_json(encoded).to_json() == encoded

    def test_solver_error_counted_not_swallowed(self, monkeypatch):
        """A pivot/node-limit blowup lands in solver_errors, never in the
        'not schedulable' denominator (the PR-10 error-swallowing fix)."""
        from repro.experiments import e15_schedulability as e15

        def explode(instance, scheduler_class, T_ref):
            if scheduler_class == "hierarchical":
                raise SolverError("node limit for the test")
            return exact_schedulable_within(instance, scheduler_class, T_ref)

        monkeypatch.setattr(e15, "exact_schedulable_within", explode)
        result = e15.run(utilizations=(0.6,), m=4, T_ref=20, trials=3)
        row = result.rows[0]
        assert row.solver_errors["hierarchical"] == 3
        assert row.acceptance["hierarchical"] == 0
        assert sum(row.solver_errors.values()) == 3

    def test_hierarchy_dominates_without_epsilon(self):
        from repro.experiments.e15_schedulability import E15Result, E15Row
        from repro.analysis import Table

        rows = [
            E15Row(
                utilization=0.9,
                acceptance={
                    c: Fraction(2, 3) if c != "hierarchical" else Fraction(2, 3)
                    for c in SCHEDULER_CLASSES
                },
            )
        ]
        assert E15Result(rows=rows, table=Table("t", ["a"])).hierarchy_dominates
        rows[0].acceptance["partitioned"] = Fraction(2, 3) + Fraction(1, 10**12)
        assert not E15Result(
            rows=rows, table=Table("t", ["a"])
        ).hierarchy_dominates


class TestE18Regressions:
    def test_prefilter_rows_identical(self):
        from repro.experiments.e18_online_arrivals import run

        base = run(utilizations=(0.6, 0.95), trials=1)
        filtered = run(utilizations=(0.6, 0.95), trials=1, prefilter=True)
        assert base.rows == filtered.rows

    def test_solver_error_field_present(self):
        from repro.experiments.e18_online_arrivals import run

        result = run(utilizations=(0.6,), trials=1)
        assert all(r.solver_errors == 0 for r in result.rows)
        assert "solver errors" in result.table.headers


class TestE19:
    def test_registered_and_sweepable(self):
        from repro.runner import get_spec

        spec = get_spec("e19")
        assert spec.space["scheduler_classes"]
        assert len(list(spec.points())) == 4

    def test_run_is_sound_and_lp_free(self):
        from repro.experiments.e19_analytic_vs_simulated import run

        with collect_stats() as stats:
            result = run(
                utilizations=(0.6, 0.95),
                scheduler_classes=("global", "partitioned", "hierarchical"),
                trials=2,
            )
        assert stats.solves == 0 and stats.pivots == 0
        assert result.sound
        for row in result.rows:
            assert isinstance(row.decided, Fraction)
            assert (
                row.analytic_schedulable
                + row.analytic_unschedulable
                + row.unknown
                == row.trials
            )
            # Soundness made it through without raising, so the decided
            # counts bracket the truth.
            assert row.analytic_schedulable <= row.exact_schedulable
            assert row.analytic_unschedulable <= row.trials - row.exact_schedulable

    def test_class_sharded_rows_equal_serial(self):
        from repro.experiments.e19_analytic_vs_simulated import run

        kwargs = dict(utilizations=(0.6, 0.95), trials=2)
        a = run(scheduler_classes=("global", "partitioned"), **kwargs)
        b = run(scheduler_classes=("hierarchical",), **kwargs)
        full = run(
            scheduler_classes=("global", "partitioned", "hierarchical"),
            **kwargs,
        )
        assert a.rows + b.rows == full.rows

    def test_disagreement_raises(self, monkeypatch):
        from repro.experiments import e19_analytic_vs_simulated as e19

        monkeypatch.setattr(
            e19, "exact_schedulable_within", lambda *a, **k: False
        )
        with pytest.raises(AnalyticSoundnessError):
            e19.run(
                utilizations=(0.5,),
                scheduler_classes=("hierarchical",),
                trials=2,
            )
