"""Tests for the parallel sweep runner: registry, store, executor, CLI.

The load-bearing properties:

* parallel (``--jobs N``) sweep output is byte-identical to serial output;
* the store round-trip preserves ``Fraction`` cells exactly;
* resuming against a populated store re-executes nothing;
* ``benchmarks/_common.emit`` writes atomically.
"""

from __future__ import annotations

import importlib.util
import inspect
import json
import os
from fractions import Fraction

import pytest

from repro.analysis.tables import Table, decode_cell, encode_cell
from repro.cli import main as cli_main
from repro.runner import (
    ResultsStore,
    all_specs,
    assemble_table,
    build_tasks,
    canonical_json,
    code_fingerprint,
    execute_task,
    get_spec,
    run_sweep,
    task_key,
)
from repro.workloads import derive_seed

#: Overrides that shrink every seedable experiment used below to test scale.
TINY = {"machine_counts": (2,), "trials": 2, "n_jobs": 4}


class TestRegistry:
    def test_all_nineteen_registered(self):
        # Other test modules register throwaway specs (the fault-injection
        # suite does); the paper's e-suite must still be exactly E01–E19.
        ids = [s.id for s in all_specs() if s.id.startswith("e")]
        assert ids == [f"e{k:02d}" for k in range(1, 20)]

    def test_summaries_come_from_docstrings(self):
        for spec in all_specs():
            if not spec.id.startswith("e"):
                continue  # test-registered specs live in test modules
            assert spec.summary.startswith(spec.id.upper().replace("E0", "E0"))
            assert len(spec.summary) > 10

    def test_params_match_run_signatures(self):
        """Every declared cli_param / space axis is a real run() kwarg."""
        for spec in all_specs():
            params = inspect.signature(spec.run).parameters
            for key in spec.cli_params:
                assert key in params, (spec.id, key)
            for key in spec.space:
                assert key in params, (spec.id, key)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            get_spec("e99")

    def test_points_cartesian_product_and_overrides(self):
        spec = get_spec("e15")
        points = spec.points()
        assert len(points) == 2  # two utilization levels x singleton axes
        overridden = spec.points({"utilizations": (0.5,), "nonsense": 1})
        assert len(overridden) == 1
        assert overridden[0]["utilizations"] == (0.5,)
        assert "nonsense" not in overridden[0]


class TestDeriveSeed:
    def test_deterministic_and_component_sensitive(self):
        a = derive_seed(7, "e07", "params", 0)
        assert a == derive_seed(7, "e07", "params", 0)
        assert a != derive_seed(7, "e07", "params", 1)
        assert a != derive_seed(8, "e07", "params", 0)
        assert 0 <= a < 2**63

    def test_usable_as_numpy_seed(self):
        from repro.workloads import rng_from_seed

        rng = rng_from_seed(derive_seed(1, "x"))
        assert 0 <= rng.random() < 1


class TestTableJson:
    def _table(self):
        t = Table("T — demo", ["name", "exact", "approx"], digits=4)
        t.add_row("a", Fraction(10, 3), 1.25)
        t.add_row("b", Fraction(-7, 2), None)
        t.add_row("c", 42, True)
        return t

    def test_round_trip_preserves_fractions_exactly(self):
        t = self._table()
        back = Table.from_json(json.loads(json.dumps(t.to_json())))
        assert back.rows[0][1] == Fraction(10, 3)
        assert isinstance(back.rows[0][1], Fraction)
        assert back.rows[1][1] == Fraction(-7, 2)
        assert back.rows == t.rows
        assert back.render() == t.render()

    def test_to_json_is_strict_json(self):
        t = Table("inf", ["v"])
        t.add_row(float("inf"))
        blob = json.dumps(t.to_json(), allow_nan=False)
        assert decode_cell(json.loads(blob)["rows"][0][0]) == float("inf")

    def test_encode_decode_cells(self):
        for cell in [None, True, False, 3, 2.5, "x", Fraction(355, 113)]:
            assert decode_cell(encode_cell(cell)) == cell

    def test_from_records_union_headers(self):
        t = Table.from_records(
            [{"a": 1, "b": Fraction(1, 2)}, {"b": 2, "c": "x"}], title="acc"
        )
        assert t.headers == ["a", "b", "c"]
        assert t.rows[0] == [1, Fraction(1, 2), None]
        assert t.rows[1] == [None, 2, "x"]

    def test_add_row_arity_checked(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)


class TestStoreAndKeys:
    def test_canonical_json_normalizes_tuples_and_fractions(self):
        assert canonical_json({"b": (1, 2), "a": Fraction(1, 3)}) == canonical_json(
            {"a": Fraction(1, 3), "b": [1, 2]}
        )

    def test_canonical_json_is_strict_json_even_for_inf(self):
        blob = canonical_json({"x": float("inf"), "f": Fraction(1, 2)})
        assert "Infinity" not in blob  # no non-standard JSON literals
        parsed = json.loads(blob)
        assert parsed["x"] == {"$float": "inf"}
        assert parsed["f"] == {"$frac": [1, 2]}

    def test_task_key_sensitive_to_every_component(self):
        fp = "f" * 64
        base = task_key("e07", {"trials": 4}, fp)
        assert base == task_key("e07", {"trials": 4}, fp)
        assert base != task_key("e08", {"trials": 4}, fp)
        assert base != task_key("e07", {"trials": 5}, fp)
        assert base != task_key("e07", {"trials": 4}, "0" * 64)

    def test_code_fingerprint_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64

    def test_store_round_trip(self, tmp_path):
        with ResultsStore(str(tmp_path / "store")) as store:
            record, elapsed, _profile = execute_task(
                "e01", {}, task_key("e01", {}, code_fingerprint()), code_fingerprint()
            )
            store.add(record, elapsed)
            assert store.has(record["key"])
            assert store.experiments() == ["e01"]
            (got,) = list(store.records("e01"))
            table = Table.from_json(got["table"])
            # E01's measured optimum is the exact Fraction 2, preserved.
            assert table.rows[0][2] == 2
            meta = store.task_meta(record["key"])
            assert meta["status"] == "done"
            assert meta["elapsed_s"] >= 0


class TestSweep:
    def test_build_tasks_default_keeps_builtin_seed(self):
        tasks = build_tasks(["e03"], overrides=TINY)
        assert len(tasks) == 1
        assert "seed" not in tasks[0].params  # run() default applies

    def test_build_tasks_replicates_with_derived_seeds(self):
        tasks = build_tasks(["e03"], overrides=TINY, seeds=3, seed0=11)
        assert len(tasks) == 3
        seeds = [t.params["seed"] for t in tasks]
        assert len(set(seeds)) == 3
        # Derivation is a pure function of (seed0, id, point, replicate).
        again = build_tasks(["e03"], overrides=TINY, seeds=3, seed0=11)
        assert [t.key for t in again] == [t.key for t in tasks]

    def test_explicit_seed_override_wins(self):
        tasks = build_tasks(["e03"], overrides=dict(TINY, seed=5), seeds=2, seed0=1)
        assert all(t.params["seed"] == 5 for t in tasks)
        assert len(tasks) == 1

    def test_parallel_equals_serial_byte_for_byte(self, tmp_path):
        ids = ["e01", "e03"]
        stats = {}
        for jobs, name in ((1, "serial"), (2, "parallel")):
            with ResultsStore(str(tmp_path / name)) as store:
                stats[name] = run_sweep(ids, store, jobs=jobs, overrides=TINY)
        assert stats["serial"].executed == stats["parallel"].executed == 2
        assert stats["serial"].failed == stats["parallel"].failed == 0
        for exp in ids:
            serial = (tmp_path / "serial" / "payloads" / f"{exp}.jsonl").read_bytes()
            parallel = (tmp_path / "parallel" / "payloads" / f"{exp}.jsonl").read_bytes()
            assert serial == parallel
            assert serial  # non-empty

    def test_resume_skips_every_completed_task(self, tmp_path):
        with ResultsStore(str(tmp_path / "store")) as store:
            first = run_sweep(["e01", "e03"], store, jobs=1, overrides=TINY)
            second = run_sweep(["e01", "e03"], store, jobs=2, overrides=TINY)
        assert first.executed == 2 and first.skipped == 0
        assert second.executed == 0 and second.skipped == 2

    def test_shards_partition_the_task_list(self):
        from repro.runner import shard_tasks

        tasks = build_tasks(["e16", "e17"])
        for n in (1, 2, 3, len(tasks), len(tasks) + 3):
            shards = [shard_tasks(tasks, (k, n)) for k in range(1, n + 1)]
            rebuilt = []
            for idx in range(len(tasks)):
                rebuilt.append(shards[idx % n][idx // n])
            assert rebuilt == tasks
            assert sum(len(s) for s in shards) == len(tasks)

    def test_shard_rejects_bad_indices(self):
        from repro.runner import shard_tasks

        tasks = build_tasks(["e16"])
        with pytest.raises(ValueError):
            shard_tasks(tasks, (0, 2))
        with pytest.raises(ValueError):
            shard_tasks(tasks, (3, 2))

    def test_sharded_sweeps_compose_into_one_store(self, tmp_path):
        ids = ["e01", "e03"]
        with ResultsStore(str(tmp_path / "store")) as store:
            first = run_sweep(ids, store, overrides=TINY, shard=(1, 2))
            second = run_sweep(ids, store, overrides=TINY, shard=(2, 2))
            full = run_sweep(ids, store, overrides=TINY)
        assert first.executed + second.executed == 2
        assert full.executed == 0 and full.skipped == 2

    def test_volatile_columns_masked_in_payload(self):
        params = {"shapes": ((4, 2),), "backends": ("exact",)}
        record, _elapsed, _profile = execute_task(
            "e14", params, task_key("e14", params, "fp"), "fp"
        )
        headers = record["table"]["headers"]
        sec = headers.index("seconds")
        assert all(row[sec] is None for row in record["table"]["rows"])
        # ...but the non-volatile measurement columns survive.
        ratio = headers.index("ratio vs T*")
        assert all(row[ratio] is not None for row in record["table"]["rows"])

    def test_assemble_table_accumulates_across_invocations(self, tmp_path):
        with ResultsStore(str(tmp_path / "store")) as store:
            run_sweep(["e03"], store, jobs=1, overrides=TINY)
            run_sweep(
                ["e03"], store, jobs=1,
                overrides={**TINY, "machine_counts": (3,)},
            )
            table = assemble_table(store, "e03")
        assert table is not None
        assert len(table.rows) == 2  # one row per machine count, two sweeps
        assert "2 tasks" in table.title

    def test_assemble_table_empty_store(self, tmp_path):
        with ResultsStore(str(tmp_path / "store")) as store:
            assert assemble_table(store, "e03") is None

    def test_assemble_table_orders_numeric_axes_numerically(self, tmp_path):
        with ResultsStore(str(tmp_path / "store")) as store:
            for counts in ((10,), (2,)):
                run_sweep(
                    ["e03"], store, jobs=1,
                    overrides={**TINY, "machine_counts": counts},
                )
            table = assemble_table(store, "e03")
        m_col = table.headers.index("m")
        assert [row[m_col] for row in table.rows] == [2, 10]

    def test_report_never_mixes_code_generations(self, tmp_path):
        """After a (simulated) code edit, only the latest generation shows."""
        with ResultsStore(str(tmp_path / "store")) as store:
            for fp in ("old" * 21 + "x", "new" * 21 + "x"):
                record, elapsed, _profile = execute_task(
                    "e01", {}, task_key("e01", {}, fp), fp
                )
                store.add(record, elapsed)
            latest = list(store.records("e01"))
            assert len(latest) == 1
            assert latest[0]["fingerprint"].startswith("new")
            everything = list(store.records("e01", fingerprint="*"))
            assert len(everything) == 2
            table = assemble_table(store, "e01")
            assert len(table.rows) == 3  # one generation's three rows, not six


class TestStoreTornWrites:
    """Crash-resilience of the JSONL payloads (a writer killed mid-append).

    The index is the source of truth: a torn trailing line belongs to a
    task that was never committed, so readers must skip it and a resumed
    sweep must re-execute that task and append a clean copy — without the
    fragment corrupting the fresh record.
    """

    E01_PARAMS: dict = {}

    def _store_with_torn_tail(self, tmp_path, fragment: str):
        store = ResultsStore(str(tmp_path / "store"))
        run_sweep(["e01"], store, jobs=1)
        payload = tmp_path / "store" / "payloads" / "e01.jsonl"
        with open(payload, "a", encoding="utf-8") as fh:
            fh.write(fragment)  # no trailing newline: a torn write
        return store, payload

    def test_records_skip_truncated_last_line(self, tmp_path):
        store, payload = self._store_with_torn_tail(
            tmp_path, '{"key": "deadbeef", "experiment": "e01", "tab'
        )
        records = list(store.records("e01"))
        assert len(records) == 1  # the committed task, not the fragment
        assert records[0]["key"] != "deadbeef"
        store.close()

    def test_records_skip_unindexed_but_parseable_line(self, tmp_path):
        # A complete JSON line whose key never made it into the index (the
        # crash happened between fsync and commit) is equally uncommitted.
        store, payload = self._store_with_torn_tail(
            tmp_path, '{"key": "deadbeef", "experiment": "e01"}\n'
        )
        assert len(list(store.records("e01"))) == 1
        store.close()

    def test_resume_repairs_torn_tail_and_reexecutes_nothing_extra(self, tmp_path):
        store, payload = self._store_with_torn_tail(tmp_path, '{"key": "de')
        store.close()
        # The crashed writer is gone; the resume opens a *fresh* store.
        store = ResultsStore(str(tmp_path / "store"))
        # The completed task is still indexed, so resume executes nothing…
        stats = run_sweep(["e01"], store, jobs=1)
        assert stats.executed == 0 and stats.skipped == 1
        # …and a *new* task appended after the torn tail is sealed off on
        # its own line, readable alongside the original record.
        record, elapsed, _profile = execute_task(
            "e01", {}, task_key("e01", {"v": 2}, code_fingerprint()),
            code_fingerprint(),
        )
        store.add(record, elapsed)
        records = list(store.records("e01"))
        assert len(records) == 2
        lines = payload.read_text(encoding="utf-8").splitlines()
        assert lines[-1].startswith('{"experiment"') or lines[-1].startswith('{"')
        assert json.loads(lines[-1])["key"] == record["key"]
        store.close()

    def test_ends_mid_line_detection(self, tmp_path):
        path = tmp_path / "f.jsonl"
        assert not ResultsStore._ends_mid_line(str(path))  # missing
        path.write_text("")
        assert not ResultsStore._ends_mid_line(str(path))  # empty
        path.write_text('{"a": 1}\n')
        assert not ResultsStore._ends_mid_line(str(path))  # clean
        path.write_text('{"a": 1}\n{"b"')
        assert ResultsStore._ends_mid_line(str(path))  # torn

    def test_blank_and_non_dict_lines_skipped(self, tmp_path):
        store, payload = self._store_with_torn_tail(tmp_path, "\n\n[1, 2]\n42\n")
        assert len(list(store.records("e01"))) == 1
        store.close()


class TestMixedExperimentStore:
    """One store holding both e16 and e18 rows — the `repro report` path
    the sweep smoke misses."""

    E16_TINY = {"cycles": (3,), "rho_percents": (100,), "jitter_denom": 16}
    E18_TINY = {
        "utilizations": (0.6,),
        "arrival_families": ("synchronous",),
        "topologies": ("flat4",),
        "trials": 1,
    }

    def _populated_store(self, tmp_path):
        store = ResultsStore(str(tmp_path / "store"))
        s16 = run_sweep(["e16"], store, jobs=1, overrides=self.E16_TINY)
        s18 = run_sweep(["e18"], store, jobs=1, overrides=self.E18_TINY)
        assert s16.failed == 0 and s18.failed == 0
        assert s16.executed >= 1 and s18.executed >= 1
        return store

    def test_store_lists_both_experiments(self, tmp_path):
        store = self._populated_store(tmp_path)
        assert store.experiments() == ["e16", "e18"]
        store.close()

    def test_assemble_each_experiment_independently(self, tmp_path):
        store = self._populated_store(tmp_path)
        t16 = assemble_table(store, "e16")
        t18 = assemble_table(store, "e18")
        assert t16 is not None and "cycle" in t16.headers
        assert t18 is not None and "miss ratio" in t18.headers
        # Rows never leak across experiments: headers stay disjoint shapes.
        assert "miss ratio" not in t16.headers
        assert "cycle" not in t18.headers
        store.close()

    def test_cli_report_renders_both(self, tmp_path, capsys):
        store = self._populated_store(tmp_path)
        store.close()
        assert cli_main(["report", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "e16 — accumulated sweep" in out
        assert "e18 — accumulated sweep" in out

    def test_e18_parallel_payload_byte_identical(self, tmp_path):
        overrides = dict(self.E18_TINY, arrival_families=("synchronous", "sporadic"))
        for jobs, name in ((1, "serial"), (2, "parallel")):
            with ResultsStore(str(tmp_path / name)) as store:
                stats = run_sweep(["e18"], store, jobs=jobs, overrides=overrides)
                assert stats.failed == 0
        serial = (tmp_path / "serial" / "payloads" / "e18.jsonl").read_bytes()
        parallel = (tmp_path / "parallel" / "payloads" / "e18.jsonl").read_bytes()
        assert serial == parallel and serial


class TestCli:
    def test_experiments_list(self, capsys):
        assert cli_main(["experiments", "list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("e01", "e07", "e15"):
            assert exp_id in out
        assert "Example II.1" in out

    def test_sweep_report_cycle(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert cli_main(
            ["sweep", "e01", "--jobs", "1", "--store", store]
        ) == 0
        out = capsys.readouterr().out
        assert "1 executed" in out
        assert cli_main(
            ["sweep", "e01", "--jobs", "2", "--store", store]
        ) == 0
        assert "0 executed" in capsys.readouterr().out
        assert cli_main(["report", store]) == 0
        out = capsys.readouterr().out
        assert "e01 — accumulated sweep" in out
        assert "semi-partitioned" in out

    def test_sweep_params_override(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        rc = cli_main(
            [
                "sweep", "e03", "--store", store,
                "--params", "machine_counts=(2,)", "trials=2", "n_jobs=4",
            ]
        )
        assert rc == 0
        assert "machine_counts=(2,)" in capsys.readouterr().out

    def test_sweep_unknown_id(self, capsys):
        assert cli_main(["sweep", "e99"]) == 2

    def test_sweep_shard_cli_cycle(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert cli_main(["sweep", "e16", "--shard", "1/2", "--store", store]) == 0
        assert "shard 1/2" in capsys.readouterr().out
        assert cli_main(["sweep", "e16", "--shard", "2/2", "--store", store]) == 0
        capsys.readouterr()
        assert cli_main(["sweep", "e16", "--store", store]) == 0
        assert "0 executed" in capsys.readouterr().out
        assert cli_main(["report", store, "e16"]) == 0
        assert "e16 — accumulated sweep (2 tasks)" in capsys.readouterr().out

    def test_sweep_shard_malformed(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["sweep", "e16", "--shard", "banana", "--store", str(tmp_path)])
        with pytest.raises(SystemExit):
            cli_main(["sweep", "e16", "--shard", "3/2", "--store", str(tmp_path)])

    def test_sweep_rejects_seeds_on_unseedable_selection(self, tmp_path, capsys):
        rc = cli_main(
            ["sweep", "e01", "e02", "--seeds", "8", "--store", str(tmp_path / "s")]
        )
        assert rc == 2
        assert "no effect" in capsys.readouterr().out
        rc = cli_main(
            ["sweep", "e01", "--seed0", "42", "--store", str(tmp_path / "s")]
        )
        assert rc == 2
        assert "no effect" in capsys.readouterr().out

    def test_sweep_rejects_typoed_params_key(self, tmp_path, capsys):
        rc = cli_main(
            ["sweep", "e03", "--store", str(tmp_path / "s"), "--params", "trails=5"]
        )
        assert rc == 2
        assert "trails" in capsys.readouterr().out

    def test_report_missing_store(self, tmp_path, capsys):
        assert cli_main(["report", str(tmp_path / "nope")]) == 2


class TestAtomicEmit:
    def _load_common(self):
        path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks", "_common.py",
        )
        spec = importlib.util.spec_from_file_location("bench_common", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_emit_atomic_and_clean(self, tmp_path, monkeypatch, capsys):
        common = self._load_common()
        monkeypatch.setattr(common, "RESULTS_DIR", str(tmp_path))
        table = Table("t", ["a"])
        table.add_row(Fraction(1, 2))
        common.emit("demo", table)
        assert (tmp_path / "demo.txt").read_text().startswith("t\n")
        # No temp droppings: the only file left is the final one.
        assert os.listdir(tmp_path) == ["demo.txt"]
        common.emit("demo", table)  # overwrite goes through os.replace too
        assert os.listdir(tmp_path) == ["demo.txt"]
