"""Fault tolerance in the sweep runner: budgets, retries, crash recovery,
the failure ledger, and the deterministic chaos harness.

The load-bearing properties:

* a ``--jobs N`` sweep whose workers are SIGKILL'd mid-task (injected
  chaos) resumes to completion with payload bytes identical to a
  fault-free serial run;
* an injected hang is killed by the driver's wall deadline and recorded;
* a task that keeps failing is quarantined as poison after its attempt
  budget and only re-run under ``--retry-failed``;
* failed payloads never enter the content-addressed store — they live in
  the failure ledger until a success clears them;
* every chaos draw is a pure function of ``(spec, task key, attempt)``.
"""

from __future__ import annotations

import os
import pickle
from fractions import Fraction
from types import SimpleNamespace

import pytest

from repro.analysis.tables import Table
from repro.exceptions import TaskBudgetError, WorkerCrashError
from repro.lp.simplex import default_max_pivots, solve_standard
from repro.runner import (
    ChaosError,
    ChaosSpec,
    ExperimentSpec,
    ResultsStore,
    Task,
    TaskBudget,
    code_fingerprint,
    register,
    run_tasks,
)
from repro.runner.budget import memory_guard, pivot_cap, worker_guards
from repro.runner.chaos import CHAOS_ENV, inject, resolve
from repro.runner.executor import _truncated_repr
from repro.session import Session, SolveRequest
from repro.session.cache import SolveCache
from repro.workloads import example_ii1


def _result(**cells):
    return SimpleNamespace(table=Table.from_records([cells], title="ft"))


def run_ft_ok(value: int = 1):
    return _result(value=value, square=value * value)


def run_ft_flaky(counter_path: str = "", fail_times: int = 1, value: int = 7):
    """Fails its first *fail_times* invocations (counted in a side file),
    then succeeds — the chaos-free way to exercise the retry loop."""
    count = 0
    if os.path.exists(counter_path):
        with open(counter_path) as fh:
            count = int(fh.read() or 0)
    with open(counter_path, "w") as fh:
        fh.write(str(count + 1))
    if count < fail_times:
        raise RuntimeError(f"flaky failure #{count}")
    return _result(value=value)


def run_ft_lp(n: int = 3):
    """A tiny exact LP solve, so the pivot budget has pivots to count."""
    result = solve_standard(
        coeff_rows=[{0: Fraction(1), 1: Fraction(2)}, {0: Fraction(3), 1: Fraction(1)}],
        senses=["<=", "<="],
        rhs=[Fraction(4 * n), Fraction(6 * n)],
        objective=[Fraction(-1), Fraction(-1)],
    )
    return _result(objective=result.objective)


def run_ft_alloc(mib: int = 24):
    blob = bytearray(mib * 1024 * 1024)
    return _result(allocated=len(blob))


def run_ft_interrupt():
    raise KeyboardInterrupt


register(ExperimentSpec(id="ft_ok", run=run_ft_ok, space={"value": (1, 2, 3, 4)}))
register(ExperimentSpec(id="ft_flaky", run=run_ft_flaky))
register(ExperimentSpec(id="ft_lp", run=run_ft_lp))
register(ExperimentSpec(id="ft_alloc", run=run_ft_alloc))
register(ExperimentSpec(id="ft_interrupt", run=run_ft_interrupt))

FP = code_fingerprint()


def _task(experiment: str, **params) -> Task:
    from repro.runner import task_key

    return Task(experiment, params, task_key(experiment, params, FP))


class TestChaosSpec:
    def test_parse_round_trip(self):
        spec = ChaosSpec.parse("crash:0.1,hang@2:0.05,pivot:0.25,fail:0.5")
        assert spec.faults == (
            ("crash", None, 0.1), ("hang", 2, 0.05),
            ("pivot", None, 0.25), ("fail", None, 0.5),
        )
        assert ChaosSpec.parse(spec.to_text()) == spec

    @pytest.mark.parametrize("bad", [
        "explode:0.5",          # unknown kind
        "crash",                # no probability
        "crash:1.5",            # out of range
        "crash:-0.1",           # out of range
        "crash:lots",           # not a float
        "crash@x:0.5",          # bad attempt qualifier
        "crash@-1:0.5",         # negative attempt
        "crash:0.7,fail:0.7",   # mass > 1 at every attempt
        "crash@1:0.6,fail:0.6",  # mass > 1 at attempt 1
        "",                     # no faults
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            ChaosSpec.parse(bad)

    def test_draw_is_pure_and_respects_attempt_qualifier(self):
        spec = ChaosSpec.parse("crash@0:1.0")
        for key in ("aaa", "bbb", "a-long-task-key"):
            assert spec.draw(key, 0) == "crash"
            assert spec.draw(key, 0) == spec.draw(key, 0)
            assert spec.draw(key, 1) is None

    def test_draw_certain_fault(self):
        spec = ChaosSpec.parse("fail:1.0")
        assert all(spec.draw(f"k{i}", 0) == "fail" for i in range(20))

    def test_draw_varies_with_key_and_attempt(self):
        spec = ChaosSpec.parse("fail:0.5")
        draws = {(spec.draw(f"k{i}", a)) for i in range(40) for a in (0, 1)}
        assert draws == {None, "fail"}

    def test_resolve_and_env(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "fail:0.25")
        assert resolve(None) == ChaosSpec.parse("fail:0.25")
        monkeypatch.delenv(CHAOS_ENV)
        assert resolve(None) is None
        spec = ChaosSpec.parse("pivot:1.0")
        assert resolve(spec) is spec
        assert resolve("pivot:1.0") == spec

    def test_inject_fail_and_pivot(self):
        with pytest.raises(ChaosError):
            inject("fail", allow_kill=True)
        assert inject("pivot", allow_kill=True) == "pivot"
        assert inject(None, allow_kill=True) is None

    def test_inject_downgrades_kills_on_serial_path(self):
        for fault in ("crash", "hang"):
            with pytest.raises(ChaosError, match="downgraded"):
                inject(fault, allow_kill=False)


class TestTaskBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            TaskBudget(wall_seconds=0)
        with pytest.raises(ValueError):
            TaskBudget(max_pivots=-1)
        with pytest.raises(ValueError):
            TaskBudget(max_memory_mb=0)
        with pytest.raises(ValueError):
            TaskBudget(retries=-1)

    def test_max_attempts(self):
        assert TaskBudget().max_attempts == 1
        assert TaskBudget(retries=3).max_attempts == 4

    def test_pivot_cap_scopes_the_process_default(self):
        before = default_max_pivots()
        with pivot_cap(5):
            assert default_max_pivots() == 5
        assert default_max_pivots() == before

    def test_pivot_budget_trips_through_the_solver(self):
        with pytest.raises(TaskBudgetError) as info:
            with worker_guards(TaskBudget(max_pivots=0)):
                run_ft_lp()
        assert info.value.kind == "pivots"
        assert info.value.limit == 0

    def test_memory_guard_trips_and_passes(self):
        with pytest.raises(TaskBudgetError) as info:
            with memory_guard(4):
                run_ft_alloc(mib=24)
        assert info.value.kind == "memory"
        assert info.value.observed > 4
        with memory_guard(256):
            run_ft_alloc(mib=4)

    def test_memory_guard_never_masks_the_task_error(self):
        with pytest.raises(RuntimeError, match="task error"):
            with memory_guard(1):
                blob = bytearray(8 * 1024 * 1024)
                raise RuntimeError(f"task error ({len(blob)})")

    def test_budget_error_pickles_with_structure(self):
        err = TaskBudgetError("wall", 2.0, 3.7, detail="killed")
        clone = pickle.loads(pickle.dumps(err))
        assert (clone.kind, clone.limit, clone.observed) == ("wall", 2.0, 3.7)
        assert "killed" in str(clone)


class TestFailureLedger:
    def test_record_read_clear(self, tmp_path):
        with SolveCache(str(tmp_path)) as cache:
            assert cache.failure_attempts("k1") == 0
            cache.record_failure(
                "k1", "exp", "RuntimeError", "boom", 1,
                traceback_text="Traceback...", params={"n": 2},
                elapsed_s=0.5,
            )
            cache.record_failure(
                "k1", "exp", "RuntimeError", "boom again", 2,
            )
            assert cache.failure_attempts("k1") == 2
            row = cache.failure("k1")
            assert row["message"] == "boom again"
            assert cache.failure_count() == 1
            assert cache.failure_count("exp") == 1
            assert cache.failure_count("other") == 0
            assert [r["key"] for r in cache.failures("exp")] == ["k1"]
            cache.clear_failure("k1")
            assert cache.failure("k1") is None

    def test_successful_put_clears_the_ledger_row(self, tmp_path):
        with SolveCache(str(tmp_path)) as cache:
            cache.record_failure("k1", "exp", "RuntimeError", "boom", 1)
            cache.put("k1", "exp", {"key": "k1", "table": {}})
            assert cache.failure("k1") is None
            assert cache.get("k1") is not None

    def test_put_refuses_failed_payloads(self, tmp_path):
        with SolveCache(str(tmp_path)) as cache:
            with pytest.raises(ValueError, match="failed payload"):
                cache.put("k1", "exp", {"error": "boom"})
            with pytest.raises(ValueError, match="failed payload"):
                cache.put("k1", "exp", {"status": "failed"})
            assert cache.get("k1") is None


class TestSerialRetries:
    def test_retry_succeeds_and_clears_the_ledger(self, tmp_path):
        counter = str(tmp_path / "count")
        task = _task("ft_flaky", counter_path=counter, fail_times=1)
        with ResultsStore(str(tmp_path / "store")) as store:
            stats = run_tasks(
                [task], store, FP, budget=TaskBudget(retries=2)
            )
            assert (stats.executed, stats.failed, stats.retried) == (1, 0, 1)
            assert store.failure(task.key) is None
            assert store.has(task.key)

    def test_exhausted_retries_record_final_failure_with_traceback(self, tmp_path):
        task = _task("ft_ok", value=9)
        with ResultsStore(str(tmp_path / "store")) as store:
            stats = run_tasks(
                [task], store, FP,
                budget=TaskBudget(retries=1), chaos="fail:1.0",
            )
            assert (stats.executed, stats.failed, stats.retried) == (0, 1, 1)
            assert "ChaosError" in stats.errors[0]
            assert "Traceback" in stats.errors[0]
            row = store.failure(task.key)
            assert row["attempts"] == 2
            assert row["error_class"] == "ChaosError"
            assert "Traceback" in row["traceback"]
            assert not store.has(task.key)

    def test_poison_quarantine_and_retry_failed(self, tmp_path):
        task = _task("ft_ok", value=9)
        budget = TaskBudget(retries=1)
        with ResultsStore(str(tmp_path / "store")) as store:
            run_tasks([task], store, FP, budget=budget, chaos="fail:1.0")
            # Resume without --retry-failed: the ledger says the attempt
            # budget is spent, so the task is skipped as poison.
            stats = run_tasks([task], store, FP, budget=budget)
            assert (stats.executed, stats.quarantined) == (0, 1)
            assert stats.failed == 0
            # --retry-failed re-runs it; success clears the ledger row.
            stats = run_tasks(
                [task], store, FP, budget=budget, retry_failed=True
            )
            assert stats.executed == 1
            assert store.failure(task.key) is None
            assert store.has(task.key)

    def test_keyboard_interrupt_aborts_without_a_failure_record(self, tmp_path):
        task = _task("ft_interrupt")
        with ResultsStore(str(tmp_path / "store")) as store:
            with pytest.raises(KeyboardInterrupt):
                run_tasks([task], store, FP, budget=TaskBudget(retries=3))
            assert store.failure(task.key) is None
            assert store.failure_count() == 0
            assert not store.has(task.key)

    def test_chaos_pivot_fault_fires_through_the_lp(self, tmp_path):
        task = _task("ft_lp", n=2)
        with ResultsStore(str(tmp_path / "store")) as store:
            stats = run_tasks([task], store, FP, chaos="pivot:1.0")
            assert stats.failed == 1
            row = store.failure(task.key)
            assert row["error_class"] == "TaskBudgetError"
            assert "pivot" in row["message"]


class TestParallelFaults:
    def test_crashed_workers_resume_to_byte_identical_payloads(self, tmp_path):
        tasks = [_task("ft_ok", value=v) for v in (1, 2, 3, 4)]
        serial_dir = tmp_path / "serial"
        chaos_dir = tmp_path / "chaos"
        with ResultsStore(str(serial_dir)) as store:
            clean = run_tasks(tasks, store, FP)
            assert clean.executed == 4
        with ResultsStore(str(chaos_dir)) as store:
            stats = run_tasks(
                tasks, store, FP, jobs=2,
                budget=TaskBudget(retries=2), chaos="crash@0:1.0",
            )
            assert stats.executed == 4
            assert stats.failed == 0
            assert stats.pool_rebuilds >= 1
            assert stats.retried >= 1
            assert store.failure_count() == 0
        serial_bytes = (serial_dir / "payloads" / "ft_ok.jsonl").read_bytes()
        chaos_bytes = (chaos_dir / "payloads" / "ft_ok.jsonl").read_bytes()
        assert chaos_bytes == serial_bytes

    def test_hang_is_killed_by_the_wall_deadline_then_retried(self, tmp_path):
        task = _task("ft_ok", value=5)
        with ResultsStore(str(tmp_path / "store")) as store:
            stats = run_tasks(
                [task], store, FP, jobs=2,
                budget=TaskBudget(wall_seconds=1.0, retries=1),
                chaos="hang@0:1.0",
            )
            assert stats.executed == 1
            assert stats.budget_kills == 1
            assert stats.retried == 1
            assert store.failure(task.key) is None

    def test_hang_without_retries_lands_in_the_ledger(self, tmp_path):
        task = _task("ft_ok", value=6)
        with ResultsStore(str(tmp_path / "store")) as store:
            stats = run_tasks(
                [task], store, FP, jobs=2,
                budget=TaskBudget(wall_seconds=1.0), chaos="hang@0:1.0",
            )
            assert (stats.executed, stats.failed) == (0, 1)
            assert stats.budget_kills == 1
            row = store.failure(task.key)
            assert row["error_class"] == "TaskBudgetError"
            assert "wall" in row["message"]

    def test_worker_crash_error_names_the_crash(self, tmp_path):
        task = _task("ft_ok", value=8)
        with ResultsStore(str(tmp_path / "store")) as store:
            stats = run_tasks(
                [task], store, FP, jobs=2, chaos="crash:1.0",
            )
            assert stats.failed == 1
            row = store.failure(task.key)
            assert row["error_class"] == WorkerCrashError.__name__


class TestLabelTruncation:
    def test_huge_param_reprs_are_bounded(self):
        task = Task("ft_ok", {"value": "x" * 500, "n": 3}, "k")
        label = task.label()
        assert len(label) < 120
        assert "…(+" in label and label.endswith(")")
        assert task.label() == label  # deterministic

    def test_short_params_are_untouched(self):
        task = Task("ft_ok", {"value": 3}, "k")
        assert task.label() == "ft_ok(value=3)"

    def test_truncated_repr_is_exact_at_the_limit(self):
        assert _truncated_repr("a" * 10, limit=48) == repr("a" * 10)
        text = _truncated_repr("a" * 100, limit=48)
        assert text.startswith("'aaa")
        assert text.endswith("chars)")


class TestSessionNeverCachesFailure:
    def test_failed_compute_leaves_the_cache_empty(self, tmp_path):
        instance = example_ii1()
        request = SolveRequest("ft_failing", instance, {})

        def boom():
            raise RuntimeError("solver exploded")

        with SolveCache(str(tmp_path)) as cache:
            with Session(cache=cache) as session:
                with pytest.raises(RuntimeError, match="solver exploded"):
                    session._solve(
                        request, compute=boom,
                        encode=lambda v: v, decode=lambda v: v,
                    )
            assert cache.get(request.key()) is None
            assert cache.bucket_summary() == {}
