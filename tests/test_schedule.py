"""Unit tests for the Schedule container."""

from fractions import Fraction

import pytest

from repro import Schedule
from repro.exceptions import InvalidScheduleError


class TestSchedule:
    def test_basic(self):
        s = Schedule([0, 1], 5)
        s.add_segment(0, 0, 0, 3)
        s.add_segment(1, 0, 3, 5)
        assert s.machines == (0, 1)
        assert s.makespan() == 5
        assert s.work_of(0) == 5
        assert s.completion_time(0) == 5

    def test_out_of_horizon_raises(self):
        s = Schedule([0], 5)
        with pytest.raises(InvalidScheduleError):
            s.add_segment(0, 0, 4, 6)
        with pytest.raises(InvalidScheduleError):
            s.add_segment(0, 0, -1, 1)

    def test_machine_overlap_raises(self):
        s = Schedule([0], 5)
        s.add_segment(0, 0, 0, 3)
        with pytest.raises(InvalidScheduleError):
            s.add_segment(0, 1, 2, 4)

    def test_job_segments_sorted_by_time(self):
        s = Schedule([0, 1], 10)
        s.add_segment(1, 5, 4, 6)
        s.add_segment(0, 5, 0, 2)
        segs = s.job_segments(5)
        assert [m for m, _ in segs] == [0, 1]

    def test_jobs_and_loads(self):
        s = Schedule([0, 1], 4)
        s.add_segment(0, 2, 0, 1)
        s.add_segment(0, 3, 1, 2)
        assert s.jobs() == (2, 3)
        assert s.machine_load(0) == 2
        assert s.machine_load(1) == 0
        assert s.total_segments() == 2

    def test_empty_schedule(self):
        s = Schedule([0], 5)
        assert s.makespan() == 0
        assert s.jobs() == ()

    def test_zero_horizon(self):
        s = Schedule([0], 0)
        assert s.makespan() == 0

    def test_negative_horizon_raises(self):
        with pytest.raises(InvalidScheduleError):
            Schedule([0], -1)

    def test_no_machines_raises(self):
        with pytest.raises(InvalidScheduleError):
            Schedule([], 5)

    def test_as_table_mentions_jobs(self):
        s = Schedule([0], 3)
        s.add_segment(0, 9, 0, 3)
        assert "j9" in s.as_table()
        assert "idle" in Schedule([0], 3).as_table()

    def test_fractional_times(self):
        s = Schedule([0], Fraction(7, 2))
        s.add_segment(0, 0, Fraction(1, 2), Fraction(7, 2))
        assert s.makespan() == Fraction(7, 2)
