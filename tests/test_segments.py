"""Unit tests for segments, arc placement and machine timelines."""

from fractions import Fraction

import pytest

from repro.exceptions import InvalidScheduleError
from repro.schedule.segments import MachineTimeline, Segment, advance_mod, place_arc


class TestSegment:
    def test_construction_coerces_fractions(self):
        s = Segment(0, 2, job=1)
        assert s.start == Fraction(0) and s.end == Fraction(2)
        assert s.length == 2

    def test_zero_length_raises(self):
        with pytest.raises(InvalidScheduleError):
            Segment(1, 1, job=0)

    def test_negative_length_raises(self):
        with pytest.raises(InvalidScheduleError):
            Segment(2, 1, job=0)

    def test_overlap_half_open(self):
        a = Segment(0, 2, 0)
        b = Segment(2, 3, 1)
        c = Segment(1, 3, 2)
        assert not a.overlaps(b)  # touching endpoints do not overlap
        assert a.overlaps(c)
        assert c.overlaps(a)


class TestPlaceArc:
    def test_no_wrap(self):
        assert place_arc(1, 2, 5) == [(Fraction(1), Fraction(3))]

    def test_wrap_splits(self):
        pieces = place_arc(4, 3, 5)
        assert pieces == [(Fraction(4), Fraction(5)), (Fraction(0), Fraction(2))]

    def test_exact_fit_to_boundary(self):
        assert place_arc(3, 2, 5) == [(Fraction(3), Fraction(5))]

    def test_full_circle(self):
        pieces = place_arc(2, 5, 5)
        assert pieces == [(Fraction(2), Fraction(5)), (Fraction(0), Fraction(2))]
        assert sum(e - s for s, e in pieces) == 5

    def test_zero_length_empty(self):
        assert place_arc(1, 0, 5) == []

    def test_length_exceeding_period_raises(self):
        with pytest.raises(InvalidScheduleError):
            place_arc(0, 6, 5)

    def test_start_outside_period_raises(self):
        with pytest.raises(InvalidScheduleError):
            place_arc(5, 1, 5)

    def test_nonpositive_period_raises(self):
        with pytest.raises(InvalidScheduleError):
            place_arc(0, 1, 0)

    def test_fractional_arithmetic(self):
        pieces = place_arc(Fraction(9, 2), Fraction(3, 2), 5)
        assert pieces == [
            (Fraction(9, 2), Fraction(5)),
            (Fraction(0), Fraction(1)),
        ]


class TestAdvanceMod:
    def test_plain(self):
        assert advance_mod(1, 2, 5) == 3

    def test_wraps(self):
        assert advance_mod(4, 3, 5) == 2

    def test_lands_on_zero(self):
        assert advance_mod(3, 2, 5) == 0

    def test_fractions(self):
        assert advance_mod(Fraction(9, 2), 1, 5) == Fraction(1, 2)


class TestMachineTimeline:
    def test_add_sorted(self):
        tl = MachineTimeline(0)
        tl.add(Segment(3, 4, 1))
        tl.add(Segment(0, 2, 0))
        assert [s.start for s in tl.segments] == [0, 3]
        assert tl.load == 3

    def test_overlap_rejected(self):
        tl = MachineTimeline(0)
        tl.add(Segment(0, 2, 0))
        with pytest.raises(InvalidScheduleError):
            tl.add(Segment(1, 3, 1))

    def test_touching_accepted(self):
        tl = MachineTimeline(0)
        tl.add(Segment(0, 2, 0))
        tl.add(Segment(2, 3, 1))
        assert len(tl) == 2

    def test_busy_at(self):
        tl = MachineTimeline(0)
        tl.add(Segment(1, 2, 0))
        assert tl.busy_at(1)
        assert tl.busy_at(Fraction(3, 2))
        assert not tl.busy_at(2)  # half-open
        assert not tl.busy_at(0)

    def test_free_intervals(self):
        tl = MachineTimeline(0)
        tl.add(Segment(1, 2, 0))
        tl.add(Segment(3, 4, 1))
        assert tl.free_intervals(5) == [(0, 1), (2, 3), (4, 5)]

    def test_free_intervals_empty_timeline(self):
        tl = MachineTimeline(0)
        assert tl.free_intervals(5) == [(0, 5)]

    def test_free_intervals_fully_packed(self):
        tl = MachineTimeline(0)
        tl.add(Segment(0, 5, 0))
        assert tl.free_intervals(5) == []

    def test_merged_segments(self):
        tl = MachineTimeline(0)
        tl.add(Segment(0, 1, 7))
        tl.add(Segment(1, 2, 7))
        tl.add(Segment(2, 3, 8))
        merged = tl.merged_segments()
        assert len(merged) == 2
        assert merged[0].length == 2 and merged[0].job == 7
