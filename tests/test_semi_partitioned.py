"""Tests for Algorithm 1 — the semi-partitioned wrap-around scheduler."""

from fractions import Fraction

import pytest

from repro import (
    Assignment,
    INF,
    Instance,
    schedule_semi_partitioned,
    validate_schedule,
)
from repro.exceptions import InvalidAssignmentError
from repro.schedule.metrics import (
    total_migrations,
    total_migrations_processing_order,
    total_preemptions_and_migrations,
)
from repro.workloads import example_ii1, example_ii1_optimal_assignment


class TestExampleIII1:
    """The paper's worked Example III.1 (same instance as II.1)."""

    def test_schedule_is_valid_at_T2(self, instance_ii1, assignment_ii1):
        s = schedule_semi_partitioned(instance_ii1, assignment_ii1, 2)
        report = validate_schedule(instance_ii1, assignment_ii1, s, T=2)
        assert report.valid
        assert report.makespan == 2

    def test_global_job_migrates_once(self, instance_ii1, assignment_ii1):
        s = schedule_semi_partitioned(instance_ii1, assignment_ii1, 2)
        assert total_migrations(s) == 1  # job 2 wraps between the machines

    def test_layout_matches_paper(self, instance_ii1, assignment_ii1):
        # Paper's schedule: job 3 (our job 2) on machine 1 in [0,1) then
        # machine 2 in [1,2); locals fill the complements.  Our construction
        # reproduces it with machines relabelled 0/1.
        s = schedule_semi_partitioned(instance_ii1, assignment_ii1, 2)
        job2 = s.job_segments(2)
        assert len(job2) == 2
        (m_a, seg_a), (m_b, seg_b) = job2
        assert {m_a, m_b} == {0, 1}
        assert seg_a.end == seg_b.start  # seamless handover

    def test_integral_times_preserved(self, instance_ii1, assignment_ii1):
        s = schedule_semi_partitioned(instance_ii1, assignment_ii1, 2)
        report = validate_schedule(
            instance_ii1, assignment_ii1, s, require_integral_times=True
        )
        assert report.valid


class TestEdgeCases:
    def test_all_local(self):
        inst = Instance.semi_partitioned(p_local=[[1, 9], [9, 1]], p_global=[9, 9])
        a = Assignment({0: {0}, 1: {1}})
        s = schedule_semi_partitioned(inst, a, 1)
        assert validate_schedule(inst, a, s, T=1).valid
        assert total_migrations(s) == 0

    def test_all_global_equals_mcnaughton_shape(self):
        inst = Instance.semi_partitioned(
            p_local=[[3, 3]] * 3, p_global=[3, 3, 3]
        )
        root = frozenset({0, 1})
        a = Assignment({j: root for j in range(3)})
        T = Fraction(9, 2)
        s = schedule_semi_partitioned(inst, a, T)
        assert validate_schedule(inst, a, s, T=T).valid
        assert s.machine_load(0) == T and s.machine_load(1) == T

    def test_zero_horizon_all_zero_jobs(self):
        inst = Instance.semi_partitioned(p_local=[[0, 0]], p_global=[0])
        a = Assignment({0: {0}})
        s = schedule_semi_partitioned(inst, a, 0)
        assert validate_schedule(inst, a, s, T=0).valid

    def test_zero_length_local_job(self):
        inst = Instance.semi_partitioned(p_local=[[0, 1], [1, 1]], p_global=[1, 1])
        a = Assignment({0: {0}, 1: {1}})
        s = schedule_semi_partitioned(inst, a, 1)
        assert validate_schedule(inst, a, s, T=1).valid
        assert s.job_segments(0) == []

    def test_exactly_full_machines(self):
        # Local jobs consume all capacity; the global job fits in nothing —
        # only feasible when there is no global volume.
        inst = Instance.semi_partitioned(p_local=[[2, 2], [2, 2]], p_global=[4, 4])
        a = Assignment({0: {0}, 1: {1}})
        s = schedule_semi_partitioned(inst, a, 2)
        assert validate_schedule(inst, a, s, T=2).valid

    def test_global_fills_all_machines(self):
        # The global job needs more than one machine's residual capacity,
        # forcing a δ = capacity cut on machine 0 (δ=2) then machine 1 (δ=1).
        inst = Instance.semi_partitioned(
            p_local=[[1, INF], [INF, 1], [3, 3]], p_global=[INF, INF, 3]
        )
        a = Assignment({0: {0}, 1: {1}, 2: frozenset({0, 1})})
        s = schedule_semi_partitioned(inst, a, 3)
        assert validate_schedule(inst, a, s, T=3).valid
        assert len(s.job_segments(2)) >= 2  # split across machines

    def test_global_job_of_length_exactly_T(self):
        inst = Instance.semi_partitioned(
            p_local=[[2, 2], [2, 2]], p_global=[2, 2]
        )
        root = frozenset({0, 1})
        a = Assignment({0: root, 1: root})
        s = schedule_semi_partitioned(inst, a, 2)
        assert validate_schedule(inst, a, s, T=2).valid

    def test_infeasible_input_rejected(self, instance_ii1, assignment_ii1):
        with pytest.raises(InvalidAssignmentError):
            schedule_semi_partitioned(instance_ii1, assignment_ii1, 1)

    def test_check_feasibility_off_still_schedules_feasible(self, instance_ii1, assignment_ii1):
        s = schedule_semi_partitioned(
            instance_ii1, assignment_ii1, 2, check_feasibility=False
        )
        assert validate_schedule(instance_ii1, assignment_ii1, s, T=2).valid

    def test_slack_horizon(self, instance_ii1, assignment_ii1):
        # Feasible (x, T) with strict slack also yields a valid schedule.
        s = schedule_semi_partitioned(instance_ii1, assignment_ii1, 5)
        assert validate_schedule(instance_ii1, assignment_ii1, s, T=5).valid


class TestPropositionIII2:
    """Migration/preemption bounds: ≤ m−1 and ≤ 2m−2 (Proposition III.2)."""

    @pytest.mark.parametrize("m", [2, 3, 5, 8])
    def test_bounds_on_saturated_global_load(self, m):
        # m+1 global jobs of length m·T/(m+1) saturate all machines.
        n = m + 1
        length = m
        inst = Instance.semi_partitioned(
            p_local=[[length] * m] * n, p_global=[length] * n
        )
        root = frozenset(range(m))
        a = Assignment({j: root for j in range(n)})
        T = Fraction(n * length, m)
        s = schedule_semi_partitioned(inst, a, T)
        assert validate_schedule(inst, a, s, T=T).valid
        assert total_migrations_processing_order(s) <= m - 1
        assert total_preemptions_and_migrations(s) <= 2 * m - 2
