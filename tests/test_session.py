"""Tests for the session layer: canon, SolveCache, Session, batch admission.

The load-bearing properties:

* one canonicalization module — the schedule serializer and the solve cache
  can never disagree on how a Fraction round-trips;
* the code fingerprint is memoized per (process, salt), and the
  ``REPRO_FINGERPRINT_SALT`` override invalidates exactly the stale
  generation (flipping the salt back restores the original hits);
* a warm :class:`Session` hit is byte-identical to the cold solve across
  backends and kernels, and performs **zero** LP solves;
* stores written by the pre-split sweep runner stay readable (index-only
  migration, scan fallback for entries without an offset);
* ``admit_batch`` equals per-stream ``admit``.
"""

from __future__ import annotations

import json
import os
import sqlite3
from fractions import Fraction

import pytest

from repro.cli import main as cli_main
from repro.core.approx import two_approximation
from repro.core.exact import solve_exact
from repro.core.programs import minimal_fractional_T
from repro.lp.stats import SolverStats, collect_stats, record
from repro.runner import ResultsStore
from repro.schedule.arrivals import JobArrival
from repro.schedule.serialize import (
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)
from repro.session import (
    FINGERPRINT_SALT_ENV,
    Session,
    SolveCache,
    SolveRequest,
    canonical_json,
    code_fingerprint,
    frac_to_str,
    instance_signature,
    set_default_cache,
    str_to_frac,
)
from repro.simulation.admission import admit, admit_batch
from repro.workloads import example_ii1, random_hierarchical, rng_from_seed


# ---------------------------------------------------------------------------
# canon: one shared encoding
# ---------------------------------------------------------------------------


def test_frac_text_round_trip_is_exact():
    ugly = Fraction(123456789123456789, 987654321987654323)
    assert str_to_frac(frac_to_str(ugly)) == ugly
    assert str_to_frac("7") == Fraction(7)


def test_schedule_serializer_uses_shared_fraction_encoding():
    """Cross-module round-trip: a schedule serialized by repro.schedule and a
    Fraction serialized by repro.session.canon use the same wire format."""
    inst = example_ii1()
    result = two_approximation(inst, backend="exact")
    doc = schedule_to_dict(result.schedule)
    for seg in doc["segments"]:
        assert str_to_frac(seg["start"]) >= 0  # canon parses serialize's text
    restored = schedule_from_json(schedule_to_json(result.schedule))
    assert schedule_to_dict(restored) == doc


def test_canonical_json_sorts_and_tags_fractions():
    text = canonical_json({"b": Fraction(1, 3), "a": (1, 2)})
    assert text.index('"a"') < text.index('"b"')
    assert json.loads(text)["b"] == {"$frac": [1, 3]}


def test_instance_signature_is_constructor_path_independent():
    inst = example_ii1()
    sig = instance_signature(inst)
    assert sig == instance_signature(example_ii1())
    assert canonical_json(sig) == canonical_json(instance_signature(inst))


# ---------------------------------------------------------------------------
# fingerprint: memoized, salted
# ---------------------------------------------------------------------------


def test_fingerprint_is_memoized_and_salt_invalidates(monkeypatch):
    monkeypatch.delenv(FINGERPRINT_SALT_ENV, raising=False)
    base = code_fingerprint()
    assert code_fingerprint() is base  # dict lookup returns the memo object
    monkeypatch.setenv(FINGERPRINT_SALT_ENV, "pr6-test")
    salted = code_fingerprint()
    assert salted != base
    assert code_fingerprint() == salted
    monkeypatch.delenv(FINGERPRINT_SALT_ENV)
    assert code_fingerprint() == base  # flipping back restores the original


# ---------------------------------------------------------------------------
# SolveCache: KV layer
# ---------------------------------------------------------------------------


def test_cache_put_get_round_trips_fractions(tmp_path):
    with SolveCache(str(tmp_path / "store")) as cache:
        record_ = {"key": "k1", "value": Fraction(22, 7)}
        cache.put("k1", "solve-demo", record_, fingerprint="f1")
        got = cache.get("k1")
        assert got["key"] == "k1"
        assert got["value"] == {"$frac": [22, 7]}
        assert cache.get("missing") is None
        assert cache.has("k1") and not cache.has("missing")


def test_cache_get_survives_stale_offset(tmp_path):
    root = str(tmp_path / "store")
    with SolveCache(root) as cache:
        cache.put("k1", "bucket", {"key": "k1", "v": 1}, fingerprint="f")
        cache._db.execute(
            "UPDATE tasks SET payload_offset = 9999 WHERE key = 'k1'"
        )
        cache._db.commit()
        assert cache.get("k1") == {"key": "k1", "v": 1}  # scan fallback


def test_cache_rejects_path_traversal_bucket(tmp_path):
    with SolveCache(str(tmp_path / "store")) as cache:
        with pytest.raises(ValueError):
            cache.put("k", "../evil", {"key": "k"})


def test_cache_seals_torn_tail_before_appending(tmp_path):
    root = str(tmp_path / "store")
    with SolveCache(root) as cache:
        cache.put("k1", "b", {"key": "k1"}, fingerprint="f")
    path = tmp_path / "store" / "payloads" / "b.jsonl"
    with open(path, "ab") as fh:
        fh.write(b'{"key": "torn')  # crashed writer: no trailing newline
    with SolveCache(root) as cache:
        cache.put("k2", "b", {"key": "k2"}, fingerprint="f")
        assert cache.get("k2") == {"key": "k2"}
        assert cache.get("k1") == {"key": "k1"}
        keys = [r["key"] for r in cache.records("b", fingerprint="*")]
    assert keys == ["k1", "k2"]  # the torn fragment is skipped, not merged


def _old_layout_store(root: str) -> str:
    """A store directory as the pre-split sweep runner wrote it: the tasks
    schema without ``payload_offset``, payload lines without offsets."""
    os.makedirs(os.path.join(root, "payloads"))
    db = sqlite3.connect(os.path.join(root, "index.sqlite"))
    db.executescript(
        """
        CREATE TABLE tasks (
            key TEXT PRIMARY KEY, experiment TEXT NOT NULL,
            params_json TEXT NOT NULL, seed INTEGER,
            fingerprint TEXT NOT NULL, status TEXT NOT NULL,
            elapsed_s REAL, created_at TEXT NOT NULL DEFAULT (datetime('now')),
            payload_path TEXT
        );
        """
    )
    record_ = {"key": "oldkey", "experiment": "e99", "table": {"x": 1}}
    with open(os.path.join(root, "payloads", "e99.jsonl"), "w") as fh:
        fh.write(json.dumps(record_, sort_keys=True) + "\n")
    db.execute(
        "INSERT INTO tasks (key, experiment, params_json, seed, fingerprint,"
        " status, elapsed_s, payload_path) VALUES"
        " ('oldkey', 'e99', '{}', NULL, 'oldfp', 'done', 0.1,"
        "  'payloads/e99.jsonl')"
    )
    db.commit()
    db.close()
    return root


def test_pre_split_store_is_migrated_and_readable(tmp_path):
    root = _old_layout_store(str(tmp_path / "old"))
    with SolveCache(root) as cache:
        columns = {
            row[1] for row in cache._db.execute("PRAGMA table_info(tasks)")
        }
        assert "payload_offset" in columns  # index-only migration
        assert cache.get("oldkey")["table"] == {"x": 1}  # NULL offset → scan
    with ResultsStore(root) as store:
        assert store.experiments() == ["e99"]
        assert [r["key"] for r in store.records("e99")] == ["oldkey"]
        assert [r["key"] for r in store.records("e99", fingerprint="*")] == [
            "oldkey"
        ]
        assert store.latest_fingerprint("e99") == "oldfp"


def test_results_store_hides_session_buckets(tmp_path):
    root = str(tmp_path / "shared")
    with SolveCache(root) as cache:
        cache.put("s1", "solve-template", {"key": "s1"}, fingerprint="f")
        cache.put("t1", "e01", {"key": "t1"}, fingerprint="f")
        store = ResultsStore(cache)
        assert store.experiments() == ["e01"]  # solve-* never tabulated
        assert "solve-template" in cache.buckets()


# ---------------------------------------------------------------------------
# Session: warm hits are byte-identical and solve-free
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "backend,kernel",
    [("hybrid", "revised"), ("exact", "revised"), ("exact", "tableau")],
)
def test_warm_hit_matches_cold_solve_exactly(tmp_path, backend, kernel):
    inst = example_ii1()
    root = str(tmp_path / "store")
    with Session(backend=backend, kernel=kernel, cache=root) as cold:
        cold_result = cold.two_approximation(inst)
        cold_T = cold.minimal_fractional_T(inst)
        assert cold.stats.cache_misses == 2 and cold.stats.cache_hits == 0
        assert cold.stats.solves > 0
    payload = tmp_path / "store" / "payloads" / "solve-two_approximation.jsonl"
    cold_bytes = payload.read_bytes()

    with Session(backend=backend, kernel=kernel, cache=root) as warm:
        with collect_stats() as scope:
            warm_result = warm.two_approximation(inst)
            warm_T = warm.minimal_fractional_T(inst)
        assert warm.stats.cache_hits == 2 and warm.stats.cache_misses == 0
        assert scope.solves == 0 and scope.pivots == 0  # zero LP work
    assert payload.read_bytes() == cold_bytes  # nothing re-appended
    assert warm_T == cold_T
    assert warm_result.makespan == cold_result.makespan
    assert warm_result.T_lp == cold_result.T_lp
    assert dict(warm_result.assignment.items()) == dict(
        cold_result.assignment.items()
    )
    assert schedule_to_dict(warm_result.schedule) == schedule_to_dict(
        cold_result.schedule
    )
    # The warm result matches a from-scratch solve too, not just the payload.
    fresh = two_approximation(inst, backend=backend, kernel=kernel)
    assert warm_result.makespan == fresh.makespan
    assert schedule_to_dict(warm_result.schedule) == schedule_to_dict(
        fresh.schedule
    )


def test_distinct_solver_configs_occupy_distinct_slots(tmp_path):
    inst = example_ii1()
    root = str(tmp_path / "store")
    with Session(backend="hybrid", cache=root) as s:
        s.minimal_fractional_T(inst)
    with Session(backend="exact", cache=root) as s:
        s.minimal_fractional_T(inst)
        assert s.stats.cache_misses == 1  # different backend, different key
    with Session(backend="exact", cache=root) as s:
        s.minimal_fractional_T(inst)
        assert s.stats.cache_hits == 1


def test_solve_exact_and_template_round_trip(tmp_path):
    inst = example_ii1()
    root = str(tmp_path / "store")
    with Session(cache=root) as cold:
        exact = cold.solve_exact(inst)
        template = cold.template(inst, exact.assignment, exact.optimum)
    assert exact.optimum == solve_exact(inst).optimum
    with Session(cache=root) as warm:
        exact2 = warm.solve_exact(inst)
        template2 = warm.template(inst, exact2.assignment, exact2.optimum)
        assert warm.stats.cache_hits == 2 and warm.stats.solves == 0
    assert exact2.optimum == exact.optimum
    assert exact2.nodes_explored == exact.nodes_explored
    assert schedule_to_dict(template2) == schedule_to_dict(template)


def test_salt_invalidates_exactly_the_stale_generation(tmp_path, monkeypatch):
    monkeypatch.delenv(FINGERPRINT_SALT_ENV, raising=False)
    inst = example_ii1()
    root = str(tmp_path / "store")
    with Session(cache=root) as s:
        s.minimal_fractional_T(inst)
        assert s.stats.cache_misses == 1

    monkeypatch.setenv(FINGERPRINT_SALT_ENV, "new-generation")
    with Session(cache=root) as s:
        s.minimal_fractional_T(inst)
        assert s.stats.cache_misses == 1  # salted fingerprint: fresh key
        s.minimal_fractional_T(inst)
        assert s.stats.cache_hits == 1
        # Both generations live in the store; default reads the latest.
        recs = list(s.cache.records("solve-minimal_fractional_T"))
        assert len(recs) == 1
        all_recs = list(
            s.cache.records("solve-minimal_fractional_T", fingerprint="*")
        )
        assert len(all_recs) == 2

    monkeypatch.delenv(FINGERPRINT_SALT_ENV)
    with Session(cache=root) as s:
        s.minimal_fractional_T(inst)
        assert s.stats.cache_hits == 1  # original generation hits again


def test_request_key_depends_on_fingerprint_and_params():
    inst = example_ii1()
    req = SolveRequest("minimal_fractional_T", inst, {"backend": "exact"})
    assert req.key("fp-a") != req.key("fp-b")
    other = SolveRequest("minimal_fractional_T", inst, {"backend": "hybrid"})
    assert req.key("fp-a") != other.key("fp-a")
    assert req.bucket == "solve-minimal_fractional_T"


def test_session_without_cache_still_aggregates_stats():
    inst = example_ii1()
    session = Session(backend="exact", cache=False)
    T = session.minimal_fractional_T(inst)
    assert T == minimal_fractional_T(inst, backend="exact")
    assert session.stats.solves > 0
    assert session.stats.cache_hits == 0 and session.stats.cache_misses == 0
    assert "solve cache" in session.profile()


def test_default_cache_is_picked_up_and_clearable(tmp_path):
    inst = example_ii1()
    cache = set_default_cache(str(tmp_path / "store"))
    try:
        with Session() as s:
            assert s.cache is cache
            s.minimal_fractional_T(inst)
            assert s.stats.cache_misses == 1
    finally:
        set_default_cache(None)
        cache.close()
    assert Session().cache is None


# ---------------------------------------------------------------------------
# stats scopes: nesting regression
# ---------------------------------------------------------------------------


def test_nested_equal_scopes_unwind_by_identity():
    """A nested scope holding exactly the outer scope's counters must not
    evict the outer scope on exit (SolverStats compares by value)."""
    with collect_stats() as outer:
        with collect_stats() as inner:
            record(SolverStats(cache_hits=1))
        assert inner.cache_hits == 1
        record(SolverStats(cache_hits=2))
    assert outer.cache_hits == 3


# ---------------------------------------------------------------------------
# batch admission
# ---------------------------------------------------------------------------


def _arrival_streams(T):
    synchronous = [
        JobArrival(job=j, index=0, release=Fraction(0), deadline=T)
        for j in range(3)
    ]
    staggered = [
        JobArrival(job=j, index=0, release=Fraction(j), deadline=2 * T + j)
        for j in range(3)
    ]
    return [synchronous, staggered]


def test_admit_batch_equals_per_stream_admit():
    inst = example_ii1()
    exact = solve_exact(inst)
    template = __import__(
        "repro.core.hierarchical", fromlist=["schedule_hierarchical"]
    ).schedule_hierarchical(inst, exact.assignment, exact.optimum)
    streams = _arrival_streams(template.T)
    batch = admit_batch(template, streams, windows=3)
    singles = [admit(template, stream, windows=3) for stream in streams]
    assert len(batch) == len(singles) == 2
    for got, want in zip(batch, singles):
        assert schedule_to_dict(got.schedule) == schedule_to_dict(want.schedule)
        assert got.admitted == want.admitted
        assert got.pending == want.pending
        assert got.max_backlog == want.max_backlog
    assert admit_batch(template, [], windows=3) == []


def test_session_admit_batch_uses_cached_template(tmp_path):
    inst = example_ii1()
    exact = solve_exact(inst)
    root = str(tmp_path / "store")
    with Session(cache=root) as s:
        streams = _arrival_streams(exact.optimum)
        results = s.admit_batch(
            inst, exact.assignment, exact.optimum, streams, windows=3
        )
        assert s.stats.cache_misses == 1  # the template, built once
        results2 = s.admit_batch(
            inst, exact.assignment, exact.optimum, streams, windows=3
        )
        assert s.stats.cache_hits == 1  # second batch replays the template
    for got, want in zip(results2, results):
        assert got.admitted == want.admitted


# ---------------------------------------------------------------------------
# CLI: --cache end to end
# ---------------------------------------------------------------------------


def test_cli_cache_warm_run_is_solve_free(tmp_path, capsys):
    store = str(tmp_path / "clistore")
    assert cli_main(["experiments", "e01", "--cache", store, "--profile"]) == 0
    cold = capsys.readouterr().out
    assert "misses" in cold and "0 hits" in cold
    assert cli_main(["experiments", "e01", "--cache", store, "--profile"]) == 0
    warm = capsys.readouterr().out
    assert "solves            0" in warm
    assert "pivots            0" in warm
    assert "3 hits, 0 misses" in warm
    # The cold and warm tables agree (the profile block differs).
    assert cold.split("solver profile:")[0] == warm.split("solver profile:")[0]


def test_cli_solve_demo_reuses_experiment_cache(tmp_path, capsys):
    store = str(tmp_path / "clistore")
    assert cli_main(["solve", "--demo", "ii1", "--cache", store]) == 0
    first = capsys.readouterr().out
    assert cli_main(["solve", "--demo", "ii1", "--cache", store, "--profile"]) == 0
    warm = capsys.readouterr().out
    assert "solves            0" in warm
    assert "3 hits, 0 misses" in warm
    assert first.strip() in warm  # identical rendered schedules


def test_sweep_store_and_session_share_one_directory(tmp_path, capsys):
    """One store directory serves sweep tasks and session solves at once;
    ``repro report`` renders only the sweep side."""
    store = str(tmp_path / "shared")
    assert cli_main(["sweep", "e01", "--store", store]) == 0
    capsys.readouterr()
    with Session(cache=store) as s:
        s.minimal_fractional_T(example_ii1())
    assert cli_main(["report", store]) == 0
    out = capsys.readouterr().out
    assert "e01" in out and "solve-" not in out


# ---------------------------------------------------------------------------
# determinism across instances beyond the worked example
# ---------------------------------------------------------------------------


def test_random_instance_cache_round_trip(tmp_path):
    rng = rng_from_seed(6)
    inst = random_hierarchical(rng, n=6, m=3)
    root = str(tmp_path / "store")
    with Session(backend="exact", cache=root) as cold:
        cold_result = cold.two_approximation(inst)
    with Session(backend="exact", cache=root) as warm:
        warm_result = warm.two_approximation(inst)
        assert warm.stats.cache_hits == 1 and warm.stats.solves == 0
    assert warm_result.makespan == cold_result.makespan
    assert schedule_to_dict(warm_result.schedule) == schedule_to_dict(
        cold_result.schedule
    )
