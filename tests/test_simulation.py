"""Tests for the simulation substrate: topology, costs, engine, trace."""

from fractions import Fraction

import pytest

from repro import Assignment, Instance, Schedule, schedule_hierarchical
from repro.exceptions import InvalidFamilyError, InvalidInstanceError
from repro.simulation import (
    CostModel,
    EventKind,
    Topology,
    check_overhead_budgets,
    mask_overhead_budget,
    simulate,
)
from repro.workloads import random_feasible_pair, rng_from_seed
from repro.workloads.generators import instance_from_topology


class TestTopology:
    def test_smp_cmp_structure(self):
        topo = Topology.smp_cmp(nodes=2, chips_per_node=2, cores_per_chip=2)
        assert topo.m == 8
        assert topo.num_levels == 4
        assert topo.lca(0, 1) == frozenset({0, 1})          # same chip
        assert topo.lca(0, 2) == frozenset({0, 1, 2, 3})    # same node
        assert topo.lca(0, 4) == frozenset(range(8))        # cross node

    def test_migration_tiers(self):
        topo = Topology.smp_cmp(2, 2, 2)
        assert topo.migration_tier(3, 3) == 0
        assert topo.migration_tier(0, 1) == 1
        assert topo.migration_tier(0, 2) == 2
        assert topo.migration_tier(0, 7) == 3

    def test_degenerate_dimensions_collapse(self):
        topo = Topology.smp_cmp(1, 1, 4)
        assert topo.m == 4
        assert topo.migration_tier(0, 3) == 1

    def test_flat_and_clustered(self):
        flat = Topology.flat(3)
        assert flat.migration_tier(0, 2) == 1
        clustered = Topology.clustered(4, 2)
        assert clustered.migration_tier(0, 1) == 1
        assert clustered.migration_tier(0, 3) == 2

    def test_binary(self):
        topo = Topology.binary(3)
        assert topo.m == 8
        assert topo.migration_tier(0, 1) == 1
        assert topo.migration_tier(0, 7) == 3

    def test_forest_rejected(self):
        from repro import LaminarFamily

        fam = LaminarFamily([0, 1, 2, 3], [[0, 1], [2, 3], [0], [1], [2], [3]])
        with pytest.raises(InvalidFamilyError):
            Topology(fam, ("core", "pair"))

    def test_tier_names(self):
        topo = Topology.smp_cmp(2, 2, 2)
        assert topo.tier_name(0) == "core"
        assert topo.tier_name(3) == "system"
        assert topo.tier_name(9) == "level-9"

    def test_mask_tier(self):
        topo = Topology.clustered(4, 2)
        assert topo.mask_tier({0}) == 0
        assert topo.mask_tier({0, 1}) == 1
        assert topo.mask_tier(range(4)) == 2
        with pytest.raises(InvalidFamilyError):
            topo.mask_tier({0, 2})


class TestCostModel:
    def test_monotone_tiers_enforced(self):
        with pytest.raises(InvalidInstanceError):
            CostModel((Fraction(2), Fraction(1)))

    def test_negative_rejected(self):
        with pytest.raises(InvalidInstanceError):
            CostModel((Fraction(-1),))

    def test_cost_lookup_saturates(self):
        cm = CostModel((Fraction(0), Fraction(1)))
        assert cm.cost_of_tier(0) == 0
        assert cm.cost_of_tier(5) == 1

    def test_migration_cost_via_topology(self):
        topo = Topology.clustered(4, 2)
        cm = CostModel.xeon_like()
        assert cm.migration_cost(topo, 0, 0) == 0
        assert cm.migration_cost(topo, 0, 1) == Fraction(1, 10)
        assert cm.migration_cost(topo, 0, 2) == Fraction(1, 2)

    def test_mask_overhead_budget_monotone(self):
        topo = Topology.smp_cmp(2, 2, 2)
        cm = CostModel.xeon_like()
        chain = [frozenset({0}), frozenset({0, 1}), frozenset(range(4)), frozenset(range(8))]
        budgets = [mask_overhead_budget(topo, cm, a) for a in chain]
        assert budgets == sorted(budgets)


class TestEngine:
    def test_events_for_migrating_job(self):
        topo = Topology.flat(2)
        cm = CostModel.xeon_like()
        s = Schedule([0, 1], 4)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 0, 2, 4)
        trace = simulate(s, topo, cm)
        kinds = [e.kind for e in trace.for_job(0)]
        assert kinds == [
            EventKind.START,
            EventKind.PREEMPT,
            EventKind.MIGRATE,
            EventKind.COMPLETE,
        ]
        migrate = [e for e in trace.events if e.kind is EventKind.MIGRATE][0]
        assert migrate.source_machine == 0 and migrate.machine == 1
        assert migrate.tier == 1
        assert trace.total_overhead == cm.cost_of_tier(1)

    def test_same_machine_resume(self):
        topo = Topology.flat(1)
        cm = CostModel((Fraction(1, 4), Fraction(1)))
        s = Schedule([0], 5)
        s.add_segment(0, 0, 0, 1)
        s.add_segment(0, 0, 3, 4)
        trace = simulate(s, topo, cm)
        kinds = [e.kind for e in trace.for_job(0)]
        assert EventKind.RESUME in kinds
        assert trace.total_overhead == Fraction(1, 4)

    def test_seamless_pieces_merged(self):
        topo = Topology.flat(1)
        cm = CostModel.xeon_like()
        s = Schedule([0], 4)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(0, 0, 2, 4)
        trace = simulate(s, topo, cm)
        assert trace.total_preemptions == 0

    def test_tier_histogram(self):
        topo = Topology.clustered(4, 2)
        cm = CostModel.xeon_like()
        s = Schedule(range(4), 6)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 0, 2, 4)   # tier 1
        s.add_segment(2, 0, 4, 6)   # tier 2
        trace = simulate(s, topo, cm)
        assert trace.tier_histogram() == {1: 1, 2: 1}

    def test_job_stats(self):
        topo = Topology.flat(2)
        cm = CostModel.xeon_like()
        s = Schedule([0, 1], 4)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 0, 2, 4)
        stats = simulate(s, topo, cm).job_stats()
        assert stats[0].migrations == 1
        assert stats[0].completion == 4


class TestOverheadBudgets:
    def test_budgets_hold_for_generated_workloads(self):
        topo = Topology.smp_cmp(2, 2, 2)
        cm = CostModel.xeon_like()
        rng = rng_from_seed(77)
        inst, base = instance_from_topology(rng, topo, cm, n=12)
        for trial in range(5):
            assignment, T = random_feasible_pair(rng, inst)
            schedule = schedule_hierarchical(inst, assignment, T)
            trace = simulate(schedule, topo, cm)
            reports = check_overhead_budgets(trace, inst, assignment, base, topo, cm)
            for r in reports:
                assert r.within_budget, (trial, r)

    def test_budget_violation_detectable(self):
        # A hand-built schedule with more migrations than the mask budgeted.
        topo = Topology.flat(2)
        cm = CostModel((Fraction(0), Fraction(10)))
        inst = Instance.semi_partitioned(p_local=[[4, 4]], p_global=[4])
        root = frozenset({0, 1})
        assignment = Assignment({0: root})
        s = Schedule([0, 1], 4)
        for k in range(4):  # ping-pong: 3 migrations at cost 10 each
            s.add_segment(k % 2, 0, k, k + 1)
        trace = simulate(s, topo, cm)
        reports = check_overhead_budgets(
            trace, inst, assignment, {0: 4}, topo, cm
        )
        assert not reports[0].within_budget
