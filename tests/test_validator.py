"""Unit tests for the schedule validator — each violation kind is detected."""

from fractions import Fraction

import pytest

from repro import Assignment, Instance, Schedule, validate_schedule
from repro.exceptions import InvalidScheduleError


@pytest.fixture
def tiny():
    """2 machines, 2 jobs, semi-partitioned; p_local = 2 everywhere."""
    inst = Instance.semi_partitioned(p_local=[[2, 2], [2, 2]], p_global=[3, 3])
    assign = Assignment({0: {0}, 1: {1}})
    return inst, assign


class TestValidSchedules:
    def test_clean_schedule_passes(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 2)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 1, 0, 2)
        report = validate_schedule(inst, assign, s)
        assert report.valid
        assert report.makespan == 2
        report.raise_if_invalid()  # no-op

    def test_migrating_global_job(self):
        inst = Instance.semi_partitioned(p_local=[[3, 3]], p_global=[3])
        assign = Assignment({0: frozenset({0, 1})})
        s = Schedule([0, 1], 3)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 0, 2, 3)
        assert validate_schedule(inst, assign, s).valid

    def test_zero_length_job_needs_no_segments(self):
        inst = Instance.semi_partitioned(p_local=[[0, 0]], p_global=[0])
        assign = Assignment({0: {0}})
        s = Schedule([0, 1], 1)
        assert validate_schedule(inst, assign, s).valid


class TestViolations:
    def test_wrong_machine_mask(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 4)
        s.add_segment(1, 0, 0, 2)  # job 0's mask is {0}
        s.add_segment(1, 1, 2, 4)
        report = validate_schedule(inst, assign, s)
        assert not report.valid
        assert any(v.kind == "mask" for v in report.violations)

    def test_under_delivered_work(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 2)
        s.add_segment(0, 0, 0, 1)  # needs 2 units
        s.add_segment(1, 1, 0, 2)
        report = validate_schedule(inst, assign, s)
        assert any(v.kind == "work" for v in report.violations)

    def test_over_delivered_work(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 3)
        s.add_segment(0, 0, 0, 3)
        s.add_segment(1, 1, 0, 2)
        report = validate_schedule(inst, assign, s)
        assert any(v.kind == "work" for v in report.violations)

    def test_never_scheduled(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 2)
        s.add_segment(0, 0, 0, 2)
        report = validate_schedule(inst, assign, s)
        assert any(v.kind == "work" and "job 1" in v.detail for v in report.violations)

    def test_parallel_self_execution(self):
        inst = Instance.semi_partitioned(p_local=[[4, 4]], p_global=[4])
        assign = Assignment({0: frozenset({0, 1})})
        s = Schedule([0, 1], 4)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 0, 1, 3)  # overlaps [1,2) with machine 0
        report = validate_schedule(inst, assign, s)
        assert any(v.kind == "self-parallel" for v in report.violations)

    def test_horizon_violation(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 10)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 1, 0, 2)
        report = validate_schedule(inst, assign, s, T=1)
        assert any(v.kind == "horizon" for v in report.violations)

    def test_forbidden_mask(self):
        from repro import INF

        inst = Instance.semi_partitioned(p_local=[[2, INF]], p_global=[INF])
        assign = Assignment({0: {1}})
        s = Schedule([0, 1], 2)
        report = validate_schedule(inst, assign, s)
        assert any(v.kind == "mask" for v in report.violations)

    def test_raise_if_invalid(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 2)
        report = validate_schedule(inst, assign, s)
        with pytest.raises(InvalidScheduleError):
            report.raise_if_invalid()


class TestIntegralityOption:
    def test_fractional_endpoints_flagged_when_required(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 3)
        s.add_segment(0, 0, Fraction(1, 2), Fraction(5, 2))
        s.add_segment(1, 1, 0, 2)
        ok = validate_schedule(inst, assign, s)
        assert ok.valid
        strict = validate_schedule(inst, assign, s, require_integral_times=True)
        assert any(v.kind == "integrality" for v in strict.violations)
