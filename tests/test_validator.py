"""Unit tests for the schedule validator — each violation kind is detected."""

from fractions import Fraction

import pytest

from repro import Assignment, Instance, Schedule, validate_schedule
from repro.exceptions import InvalidScheduleError


@pytest.fixture
def tiny():
    """2 machines, 2 jobs, semi-partitioned; p_local = 2 everywhere."""
    inst = Instance.semi_partitioned(p_local=[[2, 2], [2, 2]], p_global=[3, 3])
    assign = Assignment({0: {0}, 1: {1}})
    return inst, assign


class TestValidSchedules:
    def test_clean_schedule_passes(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 2)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 1, 0, 2)
        report = validate_schedule(inst, assign, s)
        assert report.valid
        assert report.makespan == 2
        report.raise_if_invalid()  # no-op

    def test_migrating_global_job(self):
        inst = Instance.semi_partitioned(p_local=[[3, 3]], p_global=[3])
        assign = Assignment({0: frozenset({0, 1})})
        s = Schedule([0, 1], 3)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 0, 2, 3)
        assert validate_schedule(inst, assign, s).valid

    def test_zero_length_job_needs_no_segments(self):
        inst = Instance.semi_partitioned(p_local=[[0, 0]], p_global=[0])
        assign = Assignment({0: {0}})
        s = Schedule([0, 1], 1)
        assert validate_schedule(inst, assign, s).valid


class TestViolations:
    def test_wrong_machine_mask(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 4)
        s.add_segment(1, 0, 0, 2)  # job 0's mask is {0}
        s.add_segment(1, 1, 2, 4)
        report = validate_schedule(inst, assign, s)
        assert not report.valid
        assert any(v.kind == "mask" for v in report.violations)

    def test_under_delivered_work(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 2)
        s.add_segment(0, 0, 0, 1)  # needs 2 units
        s.add_segment(1, 1, 0, 2)
        report = validate_schedule(inst, assign, s)
        assert any(v.kind == "work" for v in report.violations)

    def test_over_delivered_work(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 3)
        s.add_segment(0, 0, 0, 3)
        s.add_segment(1, 1, 0, 2)
        report = validate_schedule(inst, assign, s)
        assert any(v.kind == "work" for v in report.violations)

    def test_never_scheduled(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 2)
        s.add_segment(0, 0, 0, 2)
        report = validate_schedule(inst, assign, s)
        assert any(v.kind == "work" and "job 1" in v.detail for v in report.violations)

    def test_parallel_self_execution(self):
        inst = Instance.semi_partitioned(p_local=[[4, 4]], p_global=[4])
        assign = Assignment({0: frozenset({0, 1})})
        s = Schedule([0, 1], 4)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 0, 1, 3)  # overlaps [1,2) with machine 0
        report = validate_schedule(inst, assign, s)
        assert any(v.kind == "self-parallel" for v in report.violations)

    def test_horizon_violation(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 10)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 1, 0, 2)
        report = validate_schedule(inst, assign, s, T=1)
        assert any(v.kind == "horizon" for v in report.violations)

    def test_forbidden_mask(self):
        from repro import INF

        inst = Instance.semi_partitioned(p_local=[[2, INF]], p_global=[INF])
        assign = Assignment({0: {1}})
        s = Schedule([0, 1], 2)
        report = validate_schedule(inst, assign, s)
        assert any(v.kind == "mask" for v in report.violations)

    def test_raise_if_invalid(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 2)
        report = validate_schedule(inst, assign, s)
        with pytest.raises(InvalidScheduleError):
            report.raise_if_invalid()


class TestIntegralityOption:
    def test_fractional_endpoints_flagged_when_required(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 3)
        s.add_segment(0, 0, Fraction(1, 2), Fraction(5, 2))
        s.add_segment(1, 1, 0, 2)
        ok = validate_schedule(inst, assign, s)
        assert ok.valid
        strict = validate_schedule(inst, assign, s, require_integral_times=True)
        assert any(v.kind == "integrality" for v in strict.violations)


class TestReleaseFeasibility:
    """Condition 6 (online arrivals): no piece before its job's release."""

    def test_releases_satisfied(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 4)
        s.add_segment(0, 0, 1, 3)
        s.add_segment(1, 1, 2, 4)
        report = validate_schedule(inst, assign, s, releases={0: 1, 1: 2})
        assert report.valid

    def test_release_violation_detected(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 4)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 1, 0, 2)
        report = validate_schedule(
            inst, assign, s, releases={0: Fraction(1, 2)}
        )
        assert not report.valid
        (v,) = [v for v in report.violations if v.kind == "release"]
        assert "job 0" in v.detail

    def test_jobs_absent_from_mapping_unconstrained(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 2)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 1, 0, 2)
        assert validate_schedule(inst, assign, s, releases={}).valid
        assert validate_schedule(inst, assign, s, releases={1: 0}).valid

    def test_check_releases_standalone_with_instance_ids(self):
        """check_releases works on admission schedules whose job ids are
        instance labels, not 0…n−1 template jobs."""
        from repro.schedule import check_releases

        s = Schedule([0], 10)
        s.add_segment(0, 107, 4, 6)  # an instance-id label
        assert check_releases(s, {107: 4}) == []
        violations = check_releases(s, {107: 5})
        assert len(violations) == 1
        assert violations[0].kind == "release"


class TestStructuredViolationPayloads:
    """Regression tests for the error payloads (satellite 3): every field
    the structured violation promises is populated."""

    def test_release_payload_names_job_piece_and_time(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 4)
        s.add_segment(0, 0, 1, 3)
        s.add_segment(1, 1, 0, 2)
        report = validate_schedule(inst, assign, s, releases={0: 2})
        (v,) = [v for v in report.violations if v.kind == "release"]
        assert v.job == 0
        assert v.machine == 0
        assert v.start == 1 and v.end == 3
        assert v.limit == 2  # the release it violated
        payload = v.as_payload()
        assert payload["kind"] == "release"
        assert payload["job"] == 0 and payload["limit"] == 2

    def test_horizon_payload_carries_limit(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 10)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 1, 0, 2)
        report = validate_schedule(inst, assign, s, T=1)
        v = next(v for v in report.violations if v.kind == "horizon")
        assert v.limit == 1
        assert v.job in (0, 1)
        assert v.start == 0 and v.end == 2

    def test_work_payload_carries_required_amount(self, tiny):
        inst, assign = tiny
        s = Schedule([0, 1], 2)
        s.add_segment(0, 0, 0, 1)  # needs 2
        s.add_segment(1, 1, 0, 2)
        report = validate_schedule(inst, assign, s)
        v = next(v for v in report.violations if v.kind == "work")
        assert v.job == 0
        assert v.limit == 2

    def test_self_parallel_payload_locates_the_overlap(self):
        inst = Instance.semi_partitioned(p_local=[[4, 4]], p_global=[4])
        assign = Assignment({0: frozenset({0, 1})})
        s = Schedule([0, 1], 4)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 0, 1, 3)
        report = validate_schedule(inst, assign, s)
        v = next(v for v in report.violations if v.kind == "self-parallel")
        assert v.job == 0
        assert v.start == 1 and v.end == 2  # the overlapping slice

    def test_raise_if_invalid_attaches_structured_violations(self, tiny):
        from repro.exceptions import ScheduleValidationError

        inst, assign = tiny
        s = Schedule([0, 1], 4)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 1, 0, 2)
        report = validate_schedule(inst, assign, s, releases={0: 1})
        with pytest.raises(ScheduleValidationError) as excinfo:
            report.raise_if_invalid()
        exc = excinfo.value
        assert isinstance(exc, InvalidScheduleError)  # back-compat catch
        assert exc.violations == report.violations
        assert any(v.kind == "release" for v in exc.violations)
        assert "invalid schedule" in str(exc)

    def test_structured_error_survives_pickling(self, tiny):
        """Sweep workers raise through a process pool — structure must
        survive the round-trip."""
        import pickle

        from repro.exceptions import ScheduleValidationError

        inst, assign = tiny
        s = Schedule([0, 1], 4)
        s.add_segment(0, 0, 0, 2)
        s.add_segment(1, 1, 0, 2)
        report = validate_schedule(inst, assign, s, releases={0: 1})
        try:
            report.raise_if_invalid()
        except ScheduleValidationError as exc:
            back = pickle.loads(pickle.dumps(exc))
            assert back.violations == exc.violations
            assert back.violations[0].kind == "release"
        else:  # pragma: no cover
            pytest.fail("expected ScheduleValidationError")
