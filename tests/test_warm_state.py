"""WarmState lifecycle: staleness, resumability, determinism, the seam.

The carried-basis contract of PR 8 (see :mod:`repro.lp.warm`) has sharp
edges this module pins down:

* a stale basis — wrong dimensions, vanished variables, out-of-range
  labels — must degrade *cleanly* (same answer as a cold solve, never an
  exception, never a corrupted solver);
* a :class:`~repro.exceptions.PivotLimitError` mid-search must leave the
  :class:`~repro.core.programs._ProbeSession` resumable;
* a carried-basis solve under ``canonical="lex"`` lands on exactly the
  cold solve's vertex (warm starts change the path, never the answer);
* ``WarmState`` is process-local ephemera: pickling and session
  canonicalization both refuse it;
* sparse and densified ``W`` rows answer ftran/btran identically;
* the gmpy2 bigint seam is optional and escapable (``REPRO_BIGINT``).
"""

from __future__ import annotations

import copy
import os
import pickle
import random
import subprocess
import sys
from fractions import Fraction

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro._fraction import HAVE_GMPY2, bigint, bigint_backend
from repro.core.programs import IP3Builder, _ProbeSession
from repro.exceptions import PivotLimitError
from repro.lp import (
    LinearProgram,
    LUBasis,
    SolverStats,
    collect_stats,
    solve_lp,
    solve_standard,
    solve_standard_revised,
)
from repro.lp.basis import _to_dense
from repro.lp.warm import WarmState
from repro.workloads import make_instance, make_topology, rng_from_seed


def _small_lp():
    """A 2-row / 4-var LP with a unique optimum and a nontrivial basis."""
    rows = [
        {0: Fraction(1), 1: Fraction(1), 2: Fraction(1), 3: Fraction(1)},
        {0: Fraction(2), 1: Fraction(1)},
    ]
    senses = ["==", "<="]
    rhs = [Fraction(2), Fraction(3)]
    objective = [Fraction(1), Fraction(2), Fraction(3), Fraction(4)]
    return rows, senses, rhs, objective


class TestProcessLocality:
    def test_pickle_refused(self):
        state = WarmState([("s", 0)], 1, 2, (1,))
        with pytest.raises(TypeError):
            pickle.dumps(state)

    def test_deepcopy_refused(self):
        # copy.deepcopy routes through __reduce__ as well: aliasing live
        # kernel state across a "copy" would be just as unsound.
        state = WarmState([("s", 0)], 1, 2, (1,))
        with pytest.raises(TypeError):
            copy.deepcopy(state)

    def test_session_canonicalization_refused(self):
        from repro.session.canon import canonical

        state = WarmState([("s", 0)], 1, 2, (1,))
        with pytest.raises(TypeError):
            canonical({"payload": state})

    def test_relabel_drops_token_and_farkas(self):
        state = WarmState(
            [("x", 0), ("s", 1)], 2, 2, (1, 1),
            token="witness",
            point={0: Fraction(1), 1: Fraction(2)},
            farkas=(Fraction(1), Fraction(-1)),
        )
        mapped = state.relabel_dict({0: "a", 1: "b"})
        assert mapped is not None
        assert mapped.token is None and mapped.farkas is None
        assert mapped.labels == (("x", "a"), ("s", 1))
        assert mapped.point == {"a": Fraction(1), "b": Fraction(2)}

    def test_relabel_basic_miss_is_stale(self):
        """A basic structural that does not map kills the whole state..."""
        state = WarmState([("x", 0)], 1, 2, (1,), point={1: Fraction(3)})
        assert state.relabel_dict({1: "b"}) is None

    def test_relabel_point_miss_merely_drops(self):
        """...but a non-basic point entry is just dropped."""
        state = WarmState([("x", 0)], 1, 2, (1,), point={0: Fraction(1), 1: Fraction(3)})
        mapped = state.relabel_dict({0: "a"})
        assert mapped is not None
        assert mapped.point == {"a": Fraction(1)}


class TestStaleBasisRejection:
    def test_dimension_change_rejected_cleanly(self):
        """A basis carried across a row-count change degrades to cold."""
        rows, senses, rhs, objective = _small_lp()
        donor = solve_standard_revised(rows, senses, rhs, objective)
        assert donor.status == "optimal" and donor.warm_state is not None

        # Same variables, one extra row: state.m no longer matches.
        rows2 = rows + [{2: Fraction(1), 3: Fraction(1)}]
        senses2 = senses + ["<="]
        rhs2 = rhs + [Fraction(1)]
        cold = solve_standard_revised(rows2, senses2, rhs2, objective)
        warm = solve_standard_revised(
            rows2, senses2, rhs2, objective, warm_state=donor.warm_state
        )
        assert warm.status == cold.status == "optimal"
        assert warm.x == cold.x
        assert warm.stats.basis_reuses == 0
        assert warm.stats.crash_skips == 0

    def test_out_of_range_labels_rejected_cleanly(self):
        """Labels pointing past the consumer's variable space are stale."""
        rows, senses, rhs, objective = _small_lp()
        donor = solve_standard_revised(rows, senses, rhs, objective)
        # Shrink to 2 structural variables; any ("x", j>=2) label is now
        # unresolvable and the whole state must be rejected, not crash.
        rows2 = [{k: v for k, v in r.items() if k < 2} for r in rows]
        obj2 = objective[:2]
        cold = solve_standard_revised(rows2, senses, rhs, obj2)
        warm = solve_standard_revised(
            rows2, senses, rhs, obj2, warm_state=donor.warm_state
        )
        assert warm.status == cold.status
        assert warm.x == cold.x

    def test_keyed_state_with_vanished_variable_degrades_to_point(self):
        """solve_lp: a basic variable missing from the new LP = stale."""

        def build(extra):
            lp = LinearProgram()
            lp.add_variable("x", ub=2)
            lp.add_variable("y", ub=3)
            if extra:
                lp.add_variable("z", ub=1)
            keys = {"x": 1, "y": 2, "z": 1} if extra else {"x": 1, "y": 2}
            lp.add_constraint(keys, "<=", 4)
            obj = {"x": -1, "y": -1, "z": -3} if extra else {"x": -1, "y": -1}
            lp.set_objective(obj)
            return lp

        donor = solve_lp(build(True), backend="exact")
        assert donor.status == "optimal" and donor.warm_state is not None
        # "z" is basic at the donor optimum (cost -3 dominates); the target
        # LP does not have it, so the carried basis cannot resolve.
        cold = solve_lp(build(False), backend="exact")
        warm = solve_lp(build(False), backend="exact", warm_state=donor.warm_state)
        assert warm.status == cold.status == "optimal"
        assert warm.values == cold.values
        assert warm.objective == cold.objective

    def test_verbatim_reuse_requires_token(self):
        """Without a structure token tier 1 never fires (tier 2 may)."""
        rows, senses, rhs, objective = _small_lp()
        token = object()
        donor = solve_standard_revised(
            rows, senses, rhs, objective, structure_token=token
        )
        warm = solve_standard_revised(
            rows, senses, rhs, objective, warm_state=donor.warm_state
        )
        assert warm.status == "optimal"
        assert warm.stats.crash_skips == 0  # no token presented

        verbatim = solve_standard_revised(
            rows, senses, rhs, objective,
            warm_state=donor.warm_state, structure_token=token,
        )
        assert verbatim.status == "optimal"
        assert verbatim.x == donor.x
        assert verbatim.stats.crash_skips == 1
        assert verbatim.stats.basis_reuses == 1
        assert verbatim.stats.phase1_pivots == 0


class TestPivotLimitResumability:
    def test_kernel_raise_leaves_no_global_residue(self):
        """A budgeted abort is an exception, not a corrupted process."""
        rows, senses, rhs, objective = _small_lp()
        with pytest.raises(PivotLimitError):
            solve_standard_revised(rows, senses, rhs, objective, max_pivots=1)
        # The very next solve in the same process is untouched.
        result = solve_standard_revised(rows, senses, rhs, objective)
        assert result.status == "optimal"

    def test_probe_session_resumable_after_pivot_limit(self, monkeypatch):
        """A PivotLimitError mid-search leaves the session answerable."""
        # near_critical has many breakpoints where lower probes are not
        # answered structurally, so one genuinely reaches the solver.
        topo = make_topology("flat4")
        inst = make_instance("near_critical", rng_from_seed(11), topo, n=8)
        builder = IP3Builder(inst)
        T_hi = builder.breakpoints[-1]

        session = _ProbeSession(builder, backend="exact")
        assert session.probe(T_hi) is not None  # seeds point + basis

        import repro.core.programs as programs

        real = programs.feasible_point_rows

        def explode(*args, **kwargs):
            raise PivotLimitError(budget=1, pivots=1, phase=2, kernel="revised")

        # Walk down the breakpoint ladder until a probe actually needs an
        # LP solve — simulating a search step whose carried point did not
        # transfer (real searches hit this whenever the support dies), so
        # the probe reaches the solver and aborts mid-search.
        real_check = programs.check_standard_rows
        monkeypatch.setattr(programs, "feasible_point_rows", explode)
        monkeypatch.setattr(
            programs, "check_standard_rows", lambda *a, **k: False
        )
        T_abort = None
        for T in reversed(builder.breakpoints[:-1]):
            try:
                session.probe(T)
            except PivotLimitError:
                T_abort = T
                break
        assert T_abort is not None, "no probe reached the solver"
        monkeypatch.setattr(programs, "feasible_point_rows", real)
        monkeypatch.setattr(programs, "check_standard_rows", real_check)

        # The session resumes: same verdict as a never-interrupted session.
        fresh = _ProbeSession(builder, backend="exact")
        resumed_verdict = session.probe(T_abort)
        fresh.probe(T_hi)
        fresh_verdict = fresh.probe(T_abort)
        assert (resumed_verdict is None) == (fresh_verdict is None)


@st.composite
def random_lp(draw):
    n = draw(st.integers(1, 4))
    r = draw(st.integers(1, 4))
    rows, senses, rhs = [], [], []
    for _ in range(r):
        row = {
            j: Fraction(draw(st.integers(-4, 4)), draw(st.integers(1, 3)))
            for j in range(n)
            if draw(st.booleans())
        }
        rows.append(row)
        senses.append(draw(st.sampled_from(["<=", ">=", "=="])))
        rhs.append(Fraction(draw(st.integers(-6, 6)), draw(st.integers(1, 3))))
    objective = [Fraction(draw(st.integers(-3, 3))) for _ in range(n)]
    return rows, senses, rhs, objective


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(random_lp())
def test_carried_basis_solve_equals_cold_solve(data):
    """Property: warm path ≠ warm answer.  Under ``canonical="lex"`` a
    solve seeded with *any* carried basis lands on the cold solve's exact
    vertex — the lex-min optimum is independent of pricing and warm start.
    """
    rows, senses, rhs, objective = data
    cold = solve_standard_revised(
        rows, senses, rhs, objective, canonical="lex"
    )
    # Donor: a different pricing rule and no cleanup, so its final basis
    # is as unlike the cold path as this LP allows.
    donor = solve_standard_revised(
        rows, senses, rhs, objective, pricing="partial", canonical=False
    )
    assert donor.status == cold.status
    if donor.status != "optimal":
        return
    warm = solve_standard_revised(
        rows, senses, rhs, objective,
        warm_state=donor.warm_state, canonical="lex",
    )
    assert warm.status == "optimal"
    assert warm.objective == cold.objective
    assert warm.x == cold.x  # identical vertex, not just identical value


class TestSteepestEdgePricing:
    def test_same_optimum_as_dantzig(self):
        topo = make_topology("flat4")
        inst = make_instance("heavy_tailed", rng_from_seed(7), topo, n=6)
        builder = IP3Builder(inst)
        rows, senses, rhs, active = builder.probe_rows(builder.breakpoints[-1])
        objective = [Fraction(1)] * len(active)
        dz = solve_standard_revised(rows, senses, rhs, objective, pricing="dantzig")
        se = solve_standard_revised(rows, senses, rhs, objective, pricing="steepest")
        assert dz.status == se.status == "optimal"
        assert dz.objective == se.objective

    def test_lex_canonical_erases_pricing_choice(self):
        rows, senses, rhs, objective = _small_lp()
        vertices = {
            pricing: solve_standard_revised(
                rows, senses, rhs, objective, pricing=pricing, canonical="lex"
            ).x
            for pricing in ("dantzig", "partial", "steepest")
        }
        assert vertices["dantzig"] == vertices["partial"] == vertices["steepest"]


class TestWarmKeyDrops:
    def test_unknown_warm_keys_counted(self):
        lp = LinearProgram()
        lp.add_variable("x", ub=2)
        lp.add_variable("y", ub=3)
        lp.add_constraint({"x": 1, "y": 2}, "<=", 4)
        lp.set_objective({"x": -1, "y": -1})
        with collect_stats() as stats:
            result = solve_lp(
                lp, backend="exact",
                warm_values={
                    "x": Fraction(1),
                    "ghost": Fraction(5),
                    ("gone", 2): Fraction(7),
                },
            )
        assert result.status == "optimal"
        assert result.stats.warm_key_drops == 2
        assert stats.warm_key_drops == 2

    def test_valid_warm_keys_not_counted(self):
        lp = LinearProgram()
        lp.add_variable("x", ub=2)
        lp.add_constraint({"x": 1}, "<=", 2)
        lp.set_objective({"x": -1})
        result = solve_lp(lp, backend="exact", warm_values={"x": Fraction(1)})
        assert result.status == "optimal"
        assert result.stats.warm_key_drops == 0


class TestSparseDenseEquivalence:
    def _random_basis(self, m, seed):
        rng = random.Random(seed)
        while True:
            cols = []
            for _ in range(m):
                col = {
                    i: rng.randrange(-5, 6)
                    for i in range(m)
                    if rng.random() < 0.5
                }
                cols.append(col)
            b = [rng.randrange(0, 9) for _ in range(m)]
            lub = LUBasis.factorize(m, cols, b)
            if lub is not None:
                return lub, cols

    def test_ftran_btran_identical_on_densified_rows(self):
        """Forcing every W row dense changes nothing but the layout."""
        for seed in (3, 5, 8):
            sparse, cols = self._random_basis(7, seed)
            dense, _ = self._random_basis(7, seed)  # identical factorization
            assert dense.den == sparse.den
            for i in range(dense.m):
                row = dense.inv[i]
                if type(row) is dict:
                    dense.inv[i] = _to_dense(row, dense.m)
                assert dense.row_density(i) == 1.0
            probe_cols = cols + [{i: bigint(1)} for i in range(7)]
            for col in probe_cols:
                assert sparse.ftran(col) == dense.ftran(col)
            for cb in ({0: bigint(1)}, {i: bigint(i + 1) for i in range(7)}):
                assert sparse.btran(cb) == dense.btran(cb)

    def test_sparse_btran_counter_only_on_sparse_rows(self):
        sparse, _ = self._random_basis(6, 13)
        all_sparse = all(type(r) is dict for r in sparse.inv)
        before = sparse.sparse_btrans
        sparse.btran({0: bigint(1)})
        if all_sparse:
            assert sparse.sparse_btrans == before + 1
        dense, _ = self._random_basis(6, 13)
        for i in range(dense.m):
            if type(dense.inv[i]) is dict:
                dense.inv[i] = _to_dense(dense.inv[i], dense.m)
        before = dense.sparse_btrans
        dense.btran({0: bigint(1)})
        assert dense.sparse_btrans == before  # dense path never counts


class TestBigintSeam:
    def test_backend_reported(self):
        assert bigint_backend() in ("gmpy2", "python")
        assert (bigint_backend() == "gmpy2") == HAVE_GMPY2

    def test_bigint_arithmetic_is_exact(self):
        x = bigint(2) ** 200 + bigint(1)
        assert int(x) == 2**200 + 1
        assert Fraction(int(bigint(3)), int(bigint(6))) == Fraction(1, 2)

    @pytest.mark.skipif(not HAVE_GMPY2, reason="gmpy2 not installed")
    def test_kernel_equivalence_under_gmpy2(self):
        """With gmpy2 active the kernels still agree vertex-for-vertex."""
        rows, senses, rhs, objective = _small_lp()
        tab = solve_standard(rows, senses, rhs, objective, kernel="tableau")
        rev = solve_standard_revised(rows, senses, rhs, objective)
        assert tab.status == rev.status == "optimal"
        assert tab.x == rev.x
        assert all(isinstance(v, Fraction) for v in rev.x)

    def test_escape_hatch_forces_python_ints(self):
        """``REPRO_BIGINT=python`` pins the built-in int in a fresh process."""
        env = dict(os.environ, REPRO_BIGINT="python")
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        code = (
            "from fractions import Fraction\n"
            "from repro._fraction import bigint, bigint_backend\n"
            "assert bigint_backend() == 'python', bigint_backend()\n"
            "assert type(bigint(7)) is int\n"
            "from repro.lp import solve_standard_revised\n"
            "r = solve_standard_revised("
            "[{0: Fraction(1)}], ['<='], [Fraction(2)], [Fraction(-1)])\n"
            "assert r.status == 'optimal' and r.x == [Fraction(2)]\n"
            "print('ok')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], env=env,
            capture_output=True, text=True, timeout=120,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "ok"
