"""Tests for workload generators, adversarial families and analysis helpers."""

from fractions import Fraction

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import Instance, solve_exact
from repro.analysis import RatioStats, Table, fmt, geometric_mean
from repro.exceptions import InvalidInstanceError
from repro.workloads import (
    example_ii1,
    example_ii1_optimal_assignment,
    example_v1,
    example_v1_gap,
    example_v1_optimal_assignment,
    lp_gap_instance,
    monotone_instance,
    random_feasible_pair,
    random_hierarchical,
    random_laminar_family,
    random_semi_partitioned,
    rng_from_seed,
)


class TestGenerators:
    def test_reproducible_from_seed(self):
        a = random_hierarchical(rng_from_seed(5), n=5, m=4)
        b = random_hierarchical(rng_from_seed(5), n=5, m=4)
        assert a.family == b.family
        for j in range(5):
            for alpha in a.family.sets:
                assert a.p(j, alpha) == b.p(j, alpha)

    def test_random_laminar_family_valid(self):
        rng = rng_from_seed(9)
        for _ in range(20):
            fam = random_laminar_family(rng, m=int(rng.integers(2, 10)))
            assert fam.is_tree
            assert fam.has_all_singletons

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10**6))
    def test_monotonicity_by_construction(self, seed):
        rng = rng_from_seed(seed)
        # Instance() re-validates monotonicity; no exception = pass.
        inst = random_hierarchical(rng, n=4, m=4)
        assert inst.n == 4

    def test_specialists_have_one_cheap_machine(self):
        rng = rng_from_seed(31)
        inst = random_semi_partitioned(
            rng, n=30, m=4, specialist_fraction=1.0, flexible_fraction=0.0,
            specialist_penalty=8,
        )
        for j in range(30):
            locals_ = sorted(inst.p(j, frozenset([i])) for i in range(4))
            assert locals_[1] >= 8 * locals_[0] or locals_[0] == locals_[1]

    def test_random_feasible_pair_is_feasible(self):
        from repro import verify_ip2

        rng = rng_from_seed(13)
        inst = random_hierarchical(rng, n=6, m=4)
        assignment, T = random_feasible_pair(rng, inst)
        assert verify_ip2(inst, assignment, T).feasible

    def test_random_feasible_pair_slack(self):
        rng = rng_from_seed(13)
        inst = random_hierarchical(rng, n=6, m=4)
        a1, T1 = random_feasible_pair(rng_from_seed(1), inst)
        a2, T2 = random_feasible_pair(rng_from_seed(1), inst, slack_numerator=1)
        assert T2 == T1 * Fraction(11, 10)


class TestAdversarial:
    def test_example_ii1_claims(self):
        inst = example_ii1()
        assignment, opt = example_ii1_optimal_assignment()
        assert solve_exact(inst).optimum == opt == 2
        assert solve_exact(inst.unrelated_collapse()).optimum == 3

    def test_example_ii1_big_constant_variant(self):
        inst = example_ii1(use_inf=False)
        assert solve_exact(inst).optimum == 2

    def test_example_v1_gap_series(self):
        for n in (3, 4, 5, 7):
            inst = example_v1(n)
            opt_i = solve_exact(inst).optimum
            opt_iu = solve_exact(inst.unrelated_collapse()).optimum
            assert opt_i == n - 1
            assert opt_iu == 2 * n - 3
            assert Fraction(opt_iu, opt_i) == example_v1_gap(n)

    def test_example_v1_optimal_assignment_is_feasible(self):
        from repro import min_T_for_assignment

        inst = example_v1(5)
        assignment, opt = example_v1_optimal_assignment(5)
        assert min_T_for_assignment(inst, assignment) == opt

    def test_example_v1_requires_n3(self):
        with pytest.raises(InvalidInstanceError):
            example_v1(2)

    def test_lp_gap_instance_shape(self):
        inst = lp_gap_instance(3)
        assert inst.n == 1 + 3 * 2
        assert inst.m == 3
        # The long job costs m everywhere; units are pinned.
        assert inst.p(0, {0}) == 3

    def test_lp_gap_instance_needs_m2(self):
        with pytest.raises(InvalidInstanceError):
            lp_gap_instance(1)


class TestAnalysis:
    def test_fmt(self):
        assert fmt(None) == "-"
        assert fmt("x") == "x"
        assert fmt(True) == "yes"
        assert fmt(3) == "3"
        assert fmt(Fraction(1, 2)) == "0.500"
        assert fmt(Fraction(4, 2)) == "2"
        assert fmt(1.23456, digits=2) == "1.23"

    def test_table_render(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, Fraction(3, 2))
        out = t.render()
        assert "demo" in out and "1.500" in out
        assert out.count("+") >= 6

    def test_table_wrong_arity(self):
        t = Table("demo", ["a"])
        with pytest.raises(ValueError):
            t.add_row(1, 2)

    def test_ratio_stats(self):
        stats = RatioStats.of([1, 2, 3])
        assert stats.count == 3
        assert stats.mean == 2.0
        assert stats.minimum == 1.0 and stats.maximum == 3.0

    def test_ratio_stats_empty(self):
        import math

        assert math.isnan(RatioStats.of([]).mean)

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        import math

        assert math.isnan(geometric_mean([]))
